//! Performance metrics (§7: weighted speedup [31, 156]) and the always-on
//! log2-bucketed latency histograms behind the p50/p90/p99/p999 columns.

use crate::controller::ChannelStats;
use crate::plugin::PluginStats;
use crate::policy::PolicyStats;
use hira_core::finder::McStats;

/// Number of log2 latency buckets. Bucket 0 holds zero-cycle latencies,
/// bucket `b ≥ 1` the range `[2^(b-1), 2^b)`, and the last bucket absorbs
/// everything at or beyond `2^(LATENCY_BUCKETS-2)` cycles — far past any
/// latency the timing model can produce.
pub const LATENCY_BUCKETS: usize = 24;

/// A log2-bucketed latency histogram, recorded unconditionally by the
/// controller for demand reads and writes (one array increment per
/// request — cheap enough to stay on even in the `perf_kernel` hot path,
/// and entirely deterministic, so it never perturbs the dense-vs-event or
/// probe-attached equality guarantees).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LatencyHistogram {
    /// Per-bucket sample counts (see [`LATENCY_BUCKETS`]).
    pub buckets: [u64; LATENCY_BUCKETS],
}

impl LatencyHistogram {
    /// Records one latency sample (in memory cycles).
    #[inline]
    pub fn record(&mut self, latency: u64) {
        let b = (64 - latency.leading_zeros() as usize).min(LATENCY_BUCKETS - 1);
        self.buckets[b] += 1;
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Adds `other`'s counts into `self` (channel aggregation).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
    }

    /// The inclusive `[low, high]` cycle range of bucket `b`. The last
    /// bucket is open-ended upward; its reported high end is the clamp
    /// point every farther sample is folded into.
    pub fn bucket_bounds(b: usize) -> (u64, u64) {
        assert!(b < LATENCY_BUCKETS);
        if b == 0 {
            (0, 0)
        } else {
            (1 << (b - 1), (1u64 << b) - 1)
        }
    }

    /// The `q`-quantile latency (`q` clamped into `[0, 1]`), reported as
    /// the upper bound of the bucket containing the `⌈q·n⌉`-th sample —
    /// a deterministic, conservative estimate. `None` when no samples
    /// were recorded.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        let total = self.count();
        if total == 0 {
            return None;
        }
        let target = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).clamp(1, total);
        let mut cum = 0;
        for (b, &n) in self.buckets.iter().enumerate() {
            cum += n;
            if cum >= target {
                return Some(Self::bucket_bounds(b).1);
            }
        }
        unreachable!("cumulative count reaches the total")
    }
}

/// Result of one simulation run.
///
/// Equality is exact (bit-level on the float fields): two runs of the same
/// configuration compare equal regardless of thread count or
/// [`crate::config::KernelMode`] — the property the dense-vs-event
/// equality harness asserts.
///
/// `Default` is uniform: **every** collection field defaults empty (no
/// phantom channel), and every scalar to zero.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SimResult {
    /// Per-core IPC over the measurement region.
    pub ipc: Vec<f64>,
    /// Per-core workload instance names (for a multiprogrammed mix, the
    /// member benchmark each core ran) — the keys weighted-speedup
    /// denominators resolve by.
    pub workloads: Vec<String>,
    /// CPU cycles simulated, up to the last core's finish line — or, when
    /// the safety cap triggers first, exactly the cap. Under the
    /// event-driven kernel this *includes* skipped cycles: time skipping
    /// advances the clock, it does not compress it, so `cycles` (and the
    /// per-core IPC denominators derived from it) are identical to the
    /// dense kernel's count, and a capped run never reports a cycle
    /// number past the cap however far the next wake lay.
    pub cycles: u64,
    /// Memory command-clock cycles simulated (the device's clock domain —
    /// the denominator of bus-utilization fractions).
    pub mem_cycles: u64,
    /// Aggregated channel statistics.
    pub channel_stats: Vec<ChannelStats>,
    /// HiRA-MC statistics per (channel, rank), where configured.
    pub mc_stats: Vec<McStats>,
    /// Refresh-policy service counters per (channel, rank).
    pub policy_stats: Vec<PolicyStats>,
    /// Controller-plugin (RowHammer defense) counters per (channel, rank,
    /// plugin ordinal) — empty when no plugins are configured.
    pub plugin_stats: Vec<PluginStats>,
}

impl SimResult {
    /// Weighted speedup: `Σ IPC_shared_i / IPC_alone_i`.
    ///
    /// # Panics
    ///
    /// Panics if `alone` and the per-core IPC vectors differ in length.
    pub fn weighted_speedup(&self, alone: &[f64]) -> f64 {
        assert_eq!(alone.len(), self.ipc.len(), "need one alone-IPC per core");
        self.ipc
            .iter()
            .zip(alone)
            .map(|(&shared, &alone)| shared / alone.max(1e-9))
            .sum()
    }

    /// Total demand reads served by the memory system.
    pub fn total_reads(&self) -> u64 {
        self.channel_stats.iter().map(|s| s.reads_done).sum()
    }

    /// Row-buffer hit rate over demand accesses.
    pub fn row_hit_rate(&self) -> f64 {
        let hits: u64 = self.channel_stats.iter().map(|s| s.row_hits).sum();
        let total: u64 = self
            .channel_stats
            .iter()
            .map(|s| s.reads_done + s.writes_done)
            .sum();
        if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64
        }
    }

    /// Average read latency in memory cycles.
    ///
    /// A run with zero completed reads reports `0.0` (documented
    /// divide-by-zero guard — never `NaN`), matching
    /// [`SimResult::avg_write_latency`] and
    /// [`SimResult::data_bus_utilization`].
    pub fn avg_read_latency(&self) -> f64 {
        let lat: u64 = self.channel_stats.iter().map(|s| s.read_latency_sum).sum();
        let n = self.total_reads();
        if n == 0 {
            0.0
        } else {
            lat as f64 / n as f64
        }
    }

    /// The run's read-latency histogram, aggregated across channels.
    pub fn read_latency_histogram(&self) -> LatencyHistogram {
        let mut h = LatencyHistogram::default();
        for s in &self.channel_stats {
            h.merge(&s.read_lat_hist);
        }
        h
    }

    /// The run's write-latency histogram, aggregated across channels.
    pub fn write_latency_histogram(&self) -> LatencyHistogram {
        let mut h = LatencyHistogram::default();
        for s in &self.channel_stats {
            h.merge(&s.write_lat_hist);
        }
        h
    }

    /// The `q`-quantile read latency in memory cycles (log2-bucket upper
    /// bound; see [`LatencyHistogram::quantile`]). `None` on a run with no
    /// completed reads.
    pub fn read_latency_quantile(&self, q: f64) -> Option<u64> {
        self.read_latency_histogram().quantile(q)
    }

    /// The `q`-quantile write service latency in memory cycles. `None` on
    /// a run with no writes.
    pub fn write_latency_quantile(&self, q: f64) -> Option<u64> {
        self.write_latency_histogram().quantile(q)
    }

    /// Total demand writes issued to DRAM.
    pub fn total_writes(&self) -> u64 {
        self.channel_stats.iter().map(|s| s.writes_done).sum()
    }

    /// Average write service latency (arrival to end of the write burst)
    /// in memory cycles.
    ///
    /// A run with zero writes reports `0.0` (documented divide-by-zero
    /// guard — never `NaN`).
    pub fn avg_write_latency(&self) -> f64 {
        let lat: u64 = self.channel_stats.iter().map(|s| s.write_latency_sum).sum();
        let n = self.total_writes();
        if n == 0 {
            0.0
        } else {
            lat as f64 / n as f64
        }
    }

    /// All plugin instances' counters merged into one [`PluginStats`]
    /// (counters add, the exposure peak takes the max) — the run-level
    /// defense summary `rh_matrix` reports.
    pub fn plugin_totals(&self) -> PluginStats {
        self.plugin_stats
            .iter()
            .fold(PluginStats::default(), |acc, s| acc.merge(*s))
    }

    /// Highest instantaneous victim exposure any row reached, across all
    /// plugin instances (0 without plugins — nothing was tracking).
    pub fn max_victim_exposure(&self) -> u64 {
        self.plugin_totals().max_exposure
    }

    /// Mean per-row peak victim exposure across all tracked rows (0.0
    /// without plugins).
    pub fn mean_victim_exposure(&self) -> f64 {
        self.plugin_totals().mean_exposure()
    }

    /// Victim rows whose peak exposure reached the defense threshold,
    /// summed across plugin instances.
    pub fn rows_over_threshold(&self) -> u64 {
        self.plugin_totals().rows_over_threshold
    }

    /// Preventive refreshes injected by plugins, summed.
    pub fn plugin_injected(&self) -> u64 {
        self.plugin_totals().injected
    }

    /// Per-channel data-bus utilization: the fraction of simulated memory
    /// cycles each channel's data bus spent transferring bursts (demand
    /// reads and writes; refresh traffic never uses the data bus).
    ///
    /// A zero-cycle run reports `0.0` for every channel (documented
    /// divide-by-zero guard — never `NaN`).
    pub fn data_bus_utilization(&self) -> Vec<f64> {
        self.channel_stats
            .iter()
            .map(|s| {
                if self.mem_cycles == 0 {
                    0.0
                } else {
                    s.data_bus_busy as f64 / self.mem_cycles as f64
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result(ipc: Vec<f64>) -> SimResult {
        SimResult {
            workloads: vec!["x".to_owned(); ipc.len()],
            ipc,
            cycles: 1000,
            mem_cycles: 375,
            channel_stats: vec![ChannelStats::default()],
            mc_stats: vec![],
            policy_stats: vec![],
            plugin_stats: vec![],
        }
    }

    #[test]
    fn weighted_speedup_sums_ratios() {
        let r = result(vec![1.0, 2.0]);
        let ws = r.weighted_speedup(&[2.0, 2.0]);
        assert!((ws - 1.5).abs() < 1e-12);
    }

    #[test]
    fn equal_performance_gives_core_count() {
        let r = result(vec![0.5; 8]);
        assert!((r.weighted_speedup(&[0.5; 8]) - 8.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "alone-IPC")]
    fn mismatched_lengths_panic() {
        result(vec![1.0]).weighted_speedup(&[1.0, 1.0]);
    }

    #[test]
    fn write_latency_averages_over_writes() {
        let mut r = result(vec![1.0]);
        assert_eq!(r.avg_write_latency(), 0.0, "no writes → 0, not NaN");
        r.channel_stats[0].writes_done = 4;
        r.channel_stats[0].write_latency_sum = 200;
        assert!((r.avg_write_latency() - 50.0).abs() < 1e-12);
        // Aggregates across channels like the read-side metric.
        r.channel_stats.push(ChannelStats {
            writes_done: 4,
            write_latency_sum: 600,
            ..ChannelStats::default()
        });
        assert!((r.avg_write_latency() - 100.0).abs() < 1e-12);
    }

    #[test]
    fn default_is_uniformly_empty() {
        // The satellite fix: every collection field defaults empty — no
        // phantom single-channel asymmetry against mc/policy stats.
        let d = SimResult::default();
        assert!(d.ipc.is_empty());
        assert!(d.workloads.is_empty());
        assert_eq!(d.cycles, 0);
        assert_eq!(d.mem_cycles, 0);
        assert!(d.channel_stats.is_empty());
        assert!(d.mc_stats.is_empty());
        assert!(d.policy_stats.is_empty());
        assert!(d.plugin_stats.is_empty());
    }

    #[test]
    fn plugin_totals_merge_across_instances() {
        let mut r = result(vec![1.0]);
        assert_eq!(r.max_victim_exposure(), 0);
        assert_eq!(r.mean_victim_exposure(), 0.0);
        r.plugin_stats = vec![
            PluginStats {
                injected: 3,
                max_exposure: 40,
                exposure_sum: 60,
                exposure_rows: 2,
                rows_over_threshold: 1,
                ..PluginStats::default()
            },
            PluginStats {
                injected: 1,
                max_exposure: 25,
                exposure_sum: 40,
                exposure_rows: 2,
                ..PluginStats::default()
            },
        ];
        assert_eq!(r.plugin_injected(), 4);
        assert_eq!(r.max_victim_exposure(), 40);
        assert!((r.mean_victim_exposure() - 25.0).abs() < 1e-12);
        assert_eq!(r.rows_over_threshold(), 1);
    }

    #[test]
    fn read_latency_of_a_zero_read_run_is_zero() {
        // Divide-by-zero guard: a run that completed no reads (and a fully
        // empty default) reports 0.0, never NaN.
        let r = result(vec![1.0]);
        assert_eq!(r.avg_read_latency(), 0.0);
        assert_eq!(SimResult::default().avg_read_latency(), 0.0);
        assert_eq!(r.read_latency_quantile(0.99), None, "quantiles say None");
    }

    #[test]
    fn zero_cycle_run_reports_zero_utilization_and_latency() {
        let mut r = result(vec![1.0]);
        r.mem_cycles = 0;
        r.cycles = 0;
        assert!(r.data_bus_utilization().iter().all(|&u| u == 0.0));
        assert_eq!(r.avg_write_latency(), 0.0);
        assert_eq!(r.write_latency_quantile(0.5), None);
    }

    #[test]
    fn histogram_buckets_by_log2_and_merges() {
        let mut h = LatencyHistogram::default();
        h.record(0);
        h.record(1);
        h.record(2);
        h.record(3);
        h.record(4);
        assert_eq!(h.buckets[0], 1, "zero lands in bucket 0");
        assert_eq!(h.buckets[1], 1, "1 lands in [1,1]");
        assert_eq!(h.buckets[2], 2, "2..=3 land in [2,3]");
        assert_eq!(h.buckets[3], 1, "4 lands in [4,7]");
        assert_eq!(h.count(), 5);
        let mut other = LatencyHistogram::default();
        other.record(u64::MAX); // clamps into the last bucket
        assert_eq!(other.buckets[LATENCY_BUCKETS - 1], 1);
        h.merge(&other);
        assert_eq!(h.count(), 6);
        assert_eq!(LatencyHistogram::bucket_bounds(0), (0, 0));
        assert_eq!(LatencyHistogram::bucket_bounds(3), (4, 7));
    }

    #[test]
    fn quantiles_walk_the_buckets_deterministically() {
        let mut h = LatencyHistogram::default();
        assert_eq!(h.quantile(0.5), None, "empty histogram has no quantile");
        // 90 samples at latency 32 (bucket [32,63]), 10 at 1000 ([512,1023]).
        for _ in 0..90 {
            h.record(32);
        }
        for _ in 0..10 {
            h.record(1000);
        }
        assert_eq!(h.quantile(0.5), Some(63));
        assert_eq!(h.quantile(0.90), Some(63));
        assert_eq!(h.quantile(0.95), Some(1023));
        assert_eq!(h.quantile(0.999), Some(1023));
        assert_eq!(h.quantile(0.0), Some(63), "q=0 is the first sample");
        assert_eq!(h.quantile(1.0), Some(1023));
        // SimResult aggregates across channels before extracting.
        let mut r = result(vec![1.0]);
        r.channel_stats[0].read_lat_hist = h;
        r.channel_stats.push(ChannelStats {
            read_lat_hist: h,
            ..ChannelStats::default()
        });
        let agg = r.read_latency_histogram();
        assert_eq!(agg.count(), 200);
        assert_eq!(r.read_latency_quantile(0.99), Some(1023));
    }

    #[test]
    fn data_bus_utilization_is_per_channel_busy_fraction() {
        let mut r = result(vec![1.0]);
        assert_eq!(r.data_bus_utilization(), vec![0.0]);
        r.channel_stats[0].data_bus_busy = 75;
        r.channel_stats.push(ChannelStats {
            data_bus_busy: 150,
            ..ChannelStats::default()
        });
        let util = r.data_bus_utilization();
        assert!((util[0] - 0.2).abs() < 1e-12, "{util:?}");
        assert!((util[1] - 0.4).abs() < 1e-12, "{util:?}");
        // A zero-length run reports zeros, never NaN.
        r.mem_cycles = 0;
        assert!(r.data_bus_utilization().iter().all(|&u| u == 0.0));
    }
}
