//! Performance metrics (§7: weighted speedup [31, 156]).

use crate::controller::ChannelStats;
use crate::policy::PolicyStats;
use hira_core::finder::McStats;

/// Result of one simulation run.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Per-core IPC over the measurement region.
    pub ipc: Vec<f64>,
    /// Per-core workload instance names (for a multiprogrammed mix, the
    /// member benchmark each core ran) — the keys weighted-speedup
    /// denominators resolve by.
    pub workloads: Vec<String>,
    /// CPU cycles simulated (to the last core's finish line).
    pub cycles: u64,
    /// Aggregated channel statistics.
    pub channel_stats: Vec<ChannelStats>,
    /// HiRA-MC statistics per (channel, rank), where configured.
    pub mc_stats: Vec<McStats>,
    /// Refresh-policy service counters per (channel, rank).
    pub policy_stats: Vec<PolicyStats>,
}

impl SimResult {
    /// Weighted speedup: `Σ IPC_shared_i / IPC_alone_i`.
    ///
    /// # Panics
    ///
    /// Panics if `alone` and the per-core IPC vectors differ in length.
    pub fn weighted_speedup(&self, alone: &[f64]) -> f64 {
        assert_eq!(alone.len(), self.ipc.len(), "need one alone-IPC per core");
        self.ipc
            .iter()
            .zip(alone)
            .map(|(&shared, &alone)| shared / alone.max(1e-9))
            .sum()
    }

    /// Total demand reads served by the memory system.
    pub fn total_reads(&self) -> u64 {
        self.channel_stats.iter().map(|s| s.reads_done).sum()
    }

    /// Row-buffer hit rate over demand accesses.
    pub fn row_hit_rate(&self) -> f64 {
        let hits: u64 = self.channel_stats.iter().map(|s| s.row_hits).sum();
        let total: u64 = self
            .channel_stats
            .iter()
            .map(|s| s.reads_done + s.writes_done)
            .sum();
        if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64
        }
    }

    /// Average read latency in memory cycles.
    pub fn avg_read_latency(&self) -> f64 {
        let lat: u64 = self.channel_stats.iter().map(|s| s.read_latency_sum).sum();
        let n = self.total_reads();
        if n == 0 {
            0.0
        } else {
            lat as f64 / n as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result(ipc: Vec<f64>) -> SimResult {
        SimResult {
            workloads: vec!["x".to_owned(); ipc.len()],
            ipc,
            cycles: 1000,
            channel_stats: vec![ChannelStats::default()],
            mc_stats: vec![],
            policy_stats: vec![],
        }
    }

    #[test]
    fn weighted_speedup_sums_ratios() {
        let r = result(vec![1.0, 2.0]);
        let ws = r.weighted_speedup(&[2.0, 2.0]);
        assert!((ws - 1.5).abs() < 1e-12);
    }

    #[test]
    fn equal_performance_gives_core_count() {
        let r = result(vec![0.5; 8]);
        assert!((r.weighted_speedup(&[0.5; 8]) - 8.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "alone-IPC")]
    fn mismatched_lengths_panic() {
        result(vec![1.0]).weighted_speedup(&[1.0, 1.0]);
    }
}
