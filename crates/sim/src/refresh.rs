//! Refresh accounting helpers shared by the harness binaries.
//!
//! The refresh engines themselves live inside [`crate::controller`] (the
//! baseline `REF` state machine and the HiRA-MC glue); this module provides
//! the bookkeeping used to sanity-check refresh *completeness* in tests and
//! benches.

use crate::config::{RefreshScheme, SystemConfig};

/// Static refresh-cost figures for a configuration (no simulation).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RefreshBudget {
    /// Rank-unavailable fraction under baseline `REF`: `tRFC / tREFI`.
    pub baseline_rank_blocked_frac: f64,
    /// Per-bank busy fraction if every row were refreshed by unpaired HiRA
    /// singles: `rows_per_bank × tRC / tREFW`.
    pub hira_single_bank_busy_frac: f64,
    /// Per-bank busy fraction with perfect refresh-refresh pairing.
    pub hira_paired_bank_busy_frac: f64,
    /// Command-bus slots per second consumed by HiRA periodic refresh.
    pub hira_cmd_per_sec: f64,
}

/// Computes the analytic refresh budget of a configuration.
pub fn budget(cfg: &SystemConfig) -> RefreshBudget {
    let t = &cfg.timing;
    let rows = f64::from(cfg.rows_per_bank());
    let single = rows * t.t_rc / t.t_refw;
    RefreshBudget {
        baseline_rank_blocked_frac: t.t_rfc / t.t_refi,
        hira_single_bank_busy_frac: single,
        hira_paired_bank_busy_frac: rows * (38.0 + t.t_rp) / 2.0 / t.t_refw,
        hira_cmd_per_sec: rows * f64::from(cfg.banks) * 2.0 / (t.t_refw * 1e-9),
    }
}

/// True when a configuration performs periodic refresh at all.
pub fn refreshes(cfg: &SystemConfig) -> bool {
    !matches!(cfg.refresh, RefreshScheme::NoRefresh)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SystemConfig;

    #[test]
    fn baseline_blocked_fraction_grows_with_capacity() {
        let b8 = budget(&SystemConfig::table3(8.0, RefreshScheme::Baseline));
        let b128 = budget(&SystemConfig::table3(128.0, RefreshScheme::Baseline));
        assert!(b128.baseline_rank_blocked_frac > b8.baseline_rank_blocked_frac);
        // §1/§8: ~26% rank-blocked at 128 Gb.
        assert!(
            (0.2..0.3).contains(&b128.baseline_rank_blocked_frac),
            "blocked {}",
            b128.baseline_rank_blocked_frac
        );
    }

    #[test]
    fn pairing_halves_the_hira_bank_cost() {
        let b = budget(&SystemConfig::table3(32.0, RefreshScheme::Baseline));
        assert!(b.hira_paired_bank_busy_frac < b.hira_single_bank_busy_frac * 0.6);
    }

    #[test]
    fn hira_command_rate_is_within_bus_capacity() {
        // Even at 128 Gb, the ACT/PRE stream must fit in the 1.2 G-slot/s
        // command bus of one channel (§12 discusses this pressure).
        let b = budget(&SystemConfig::table3(128.0, RefreshScheme::Baseline));
        assert!(b.hira_cmd_per_sec < 1.2e9, "cmd/s {}", b.hira_cmd_per_sec);
    }
}
