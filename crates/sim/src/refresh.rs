//! Refresh accounting helpers shared by the harness binaries.
//!
//! The refresh engines themselves are [`crate::policy`] objects driven by
//! [`crate::controller`]; this module provides the bookkeeping used to
//! sanity-check refresh *cost* in tests and benches. The per-policy numbers
//! come from the policy instance itself
//! ([`crate::policy::RefreshPolicy::profile`]), so
//! third-party policies get correct accounting without this module knowing
//! them; the named `baseline_*`/`hira_*` fields keep the paper's closed-form
//! comparison arithmetic (§8) available for any configuration.

use crate::config::SystemConfig;
use crate::policy::{probe, PolicyProfile};

/// Static refresh-cost figures for a configuration (no simulation).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RefreshBudget {
    /// Rank-unavailable fraction under baseline `REF`: `tRFC / tREFI`.
    pub baseline_rank_blocked_frac: f64,
    /// Per-bank busy fraction if every row were refreshed by unpaired HiRA
    /// singles: `rows_per_bank × tRC / tREFW`.
    pub hira_single_bank_busy_frac: f64,
    /// Per-bank busy fraction with perfect refresh-refresh pairing.
    pub hira_paired_bank_busy_frac: f64,
    /// Command-bus slots per second consumed by HiRA periodic refresh.
    pub hira_cmd_per_sec: f64,
    /// The analytic profile of the *configured* policy, whatever it is.
    pub policy: PolicyProfile,
}

/// Computes the analytic refresh budget of a configuration. The
/// scheme-independent fields come from the paper's closed forms; the
/// `policy` field is reported by the configured policy object.
pub fn budget(cfg: &SystemConfig) -> RefreshBudget {
    let t = &cfg.timing;
    let rows = f64::from(cfg.rows_per_bank());
    let single = rows * t.t_rc / t.t_refw;
    RefreshBudget {
        baseline_rank_blocked_frac: t.t_rfc / t.t_refi,
        hira_single_bank_busy_frac: single,
        hira_paired_bank_busy_frac: rows * (38.0 + t.t_rp) / 2.0 / t.t_refw,
        hira_cmd_per_sec: rows * f64::from(cfg.banks) * 2.0 / (t.t_refw * 1e-9),
        policy: probe(cfg).profile(),
    }
}

/// True when a configuration performs periodic refresh at all — answered by
/// the policy object, not by matching a scheme list.
pub fn refreshes(cfg: &SystemConfig) -> bool {
    probe(cfg).performs_refresh()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SystemConfig;
    use crate::policy;

    #[test]
    fn baseline_blocked_fraction_grows_with_capacity() {
        let b8 = budget(&SystemConfig::table3(8.0, policy::baseline()));
        let b128 = budget(&SystemConfig::table3(128.0, policy::baseline()));
        assert!(b128.baseline_rank_blocked_frac > b8.baseline_rank_blocked_frac);
        // §1/§8: ~26% rank-blocked at 128 Gb.
        assert!(
            (0.2..0.3).contains(&b128.baseline_rank_blocked_frac),
            "blocked {}",
            b128.baseline_rank_blocked_frac
        );
        // The policy profile agrees with the closed form for Baseline.
        assert!((b128.policy.rank_blocked_frac - b128.baseline_rank_blocked_frac).abs() < 1e-12);
    }

    #[test]
    fn pairing_halves_the_hira_bank_cost() {
        let b = budget(&SystemConfig::table3(32.0, policy::baseline()));
        assert!(b.hira_paired_bank_busy_frac < b.hira_single_bank_busy_frac * 0.6);
    }

    #[test]
    fn hira_command_rate_is_within_bus_capacity() {
        // Even at 128 Gb, the ACT/PRE stream must fit in the 1.2 G-slot/s
        // command bus of one channel (§12 discusses this pressure).
        let b = budget(&SystemConfig::table3(128.0, policy::baseline()));
        assert!(b.hira_cmd_per_sec < 1.2e9, "cmd/s {}", b.hira_cmd_per_sec);
        let h = budget(&SystemConfig::table3(128.0, policy::hira(4)));
        assert!((h.policy.cmd_per_sec - h.hira_cmd_per_sec).abs() < 1.0);
    }

    #[test]
    fn refreshes_queries_the_policy_object() {
        assert!(!refreshes(&SystemConfig::table3(8.0, policy::noref())));
        for p in [
            policy::baseline(),
            policy::refpb(),
            policy::raidr(),
            policy::hira(2),
        ] {
            assert!(
                refreshes(&SystemConfig::table3(8.0, p.clone())),
                "{}",
                p.name()
            );
        }
        // A preventive layer alone does not make a no-refresh system
        // periodically refreshed.
        assert!(!refreshes(&SystemConfig::table3(
            8.0,
            policy::noref().with_para_immediate(0.5)
        )));
    }

    #[test]
    fn per_policy_profiles_differ_where_the_arrangements_do() {
        let mk = |p| budget(&SystemConfig::table3(32.0, p)).policy;
        let baseline = mk(policy::baseline());
        let refpb = mk(policy::refpb());
        let raidr = mk(policy::raidr());
        let hira = mk(policy::hira(4));
        // Only the all-bank REF blocks the whole rank.
        assert!(baseline.rank_blocked_frac > 0.0);
        assert_eq!(refpb.rank_blocked_frac, 0.0);
        assert_eq!(raidr.rank_blocked_frac, 0.0);
        assert_eq!(hira.rank_blocked_frac, 0.0);
        // Retention binning refreshes fewer rows than unbinned per-row HiRA
        // singles would.
        assert!(raidr.cmd_per_sec < hira.cmd_per_sec);
        assert!(raidr.bank_busy_frac > 0.0);
    }
}
