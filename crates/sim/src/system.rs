//! Whole-system assembly: cores + shared LLC + memory channels.
//!
//! Two simulation kernels drive the same component models
//! ([`crate::config::KernelMode`]):
//!
//! * **Dense** — the legacy reference loop: every core ticks every CPU
//!   cycle, the memory side ticks on every command-clock edge.
//! * **Event** — time skipping: between *interesting* cycles the clock
//!   jumps. A cycle is interesting when a core can retire/dispatch for
//!   real (cores blocked on a DRAM fill sleep; pure compute bubbles are
//!   batched arithmetically at retire width), when a channel has queued
//!   demand or a due completion, or when a refresh policy's declared
//!   [`crate::policy::RefreshPolicy::next_wake`] arrives. The memory-tick
//!   rational accumulator is advanced in closed form across skips, so the
//!   observable cycle numbers — and therefore every statistic in
//!   [`SimResult`] — are **bit-identical** between the two kernels (the
//!   `perf_kernel` harness and `tests/kernel_equivalence.rs` enforce it).

use crate::config::{KernelMode, SystemConfig};
use crate::controller::Channel;
use crate::core_model::{Core, CoreRequest};
use crate::llc::{Access, Llc, Waiter};
use crate::mapping::decode;
use crate::metrics::SimResult;
use crate::probe::{EpochSample, ProbeHost};
use crate::request::MemRequest;
use hira_workload::WorkloadEnv;
use std::collections::HashMap;

/// How a run spent its time: the simulator-side half of the engine's
/// per-point telemetry ([`System::run_telemetered`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RunTelemetry {
    /// Kernel loop iterations actually processed (the event kernel's
    /// skipped cycles are not events — this is the number the kernel
    /// speedup comes from).
    pub events: u64,
    /// High-water mark of any channel's combined read+write queue.
    pub peak_queue: u64,
}

/// Cumulative channel-stat snapshot an epoch diffs against.
#[derive(Debug, Clone, Copy, Default)]
struct EpochAgg {
    reads: u64,
    writes: u64,
    row_hits: u64,
    dbus: u64,
    refresh_busy: u64,
}

/// Epoch-sampling state ([`crate::probe::Probe::on_epoch`]): fires at
/// every multiple of `every` CPU cycles, in both kernels, at the exact
/// dense cycle — the event kernel clamps its time skips to the next
/// boundary (processing extra cycles is always safe, so results stay
/// bit-identical).
#[derive(Debug)]
struct EpochTracker {
    every: u64,
    index: u64,
    last_insts: u64,
    last_mem_cycle: u64,
    last: EpochAgg,
}

/// A fully-assembled simulated system.
#[derive(Debug)]
pub struct System {
    cfg: SystemConfig,
    cores: Vec<Core>,
    llc: Llc,
    channels: Vec<Channel>,
    /// Outstanding memory fetches: request id → line address.
    inflight: HashMap<u64, u64>,
    next_req_id: u64,
    mem_tick_acc: u64,
    mem_cycle: u64,
    /// Exact memory-ticks-per-CPU-cycle rational, from the device's clock
    /// pairing.
    tick_num: u64,
    tick_den: u64,
    /// The run's observer (inert unless `cfg.probe` is set).
    probes: ProbeHost,
    /// Epoch sampling, when the probe asked for a cadence.
    epoch: Option<EpochTracker>,
}

impl System {
    /// Builds a system whose demand traffic comes from `cfg.workload`: one
    /// frontend instance per core, built from a per-core [`WorkloadEnv`]
    /// (core index, core count, configuration seed).
    pub fn new(cfg: SystemConfig) -> Self {
        let cores = (0..cfg.cores)
            .map(|i| {
                let env = WorkloadEnv {
                    core: i,
                    cores: cfg.cores,
                    seed: cfg.seed,
                };
                Core::new(i, cfg.workload.build(&env))
            })
            .collect();
        let llc = Llc::new(cfg.llc_bytes, cfg.llc_ways);
        let channels = (0..cfg.channels).map(|c| Channel::new(&cfg, c)).collect();
        let (tick_num, tick_den) = cfg.clock().mem_ticks_per_cpu_cycle();
        let probes = ProbeHost::from_handle(cfg.probe.as_ref());
        let epoch = probes.epoch_every().map(|every| EpochTracker {
            every,
            index: 0,
            last_insts: 0,
            last_mem_cycle: 0,
            last: EpochAgg::default(),
        });
        System {
            cores,
            llc,
            channels,
            inflight: HashMap::new(),
            next_req_id: 0,
            mem_tick_acc: 0,
            mem_cycle: 0,
            tick_num,
            tick_den,
            probes,
            epoch,
            cfg,
        }
    }

    /// Runs until every core retires warmup + measurement instructions (or
    /// the safety cycle cap triggers) and returns per-core IPC. Dispatches
    /// on the configured [`KernelMode`]; results are identical either way.
    pub fn run(self) -> SimResult {
        self.run_telemetered().0
    }

    /// [`System::run`] plus run telemetry (events processed, peak queue
    /// depth) — the engine's per-point instrumentation path. The telemetry
    /// is observational: the [`SimResult`] is the same either way.
    pub fn run_telemetered(self) -> (SimResult, RunTelemetry) {
        match self.cfg.kernel {
            KernelMode::Dense => self.run_dense(),
            KernelMode::Event => self.run_event(),
        }
    }

    /// The safety cycle cap: even at IPC 0.01 the run terminates. Both
    /// kernels stop the moment the cycle counter *reaches* this value —
    /// the event kernel clamps its time skips to it, so a capped run
    /// reports exactly `cap` in [`SimResult::cycles`] regardless of how
    /// far the next wake would have jumped.
    fn safety_cap(&self, target: u64) -> u64 {
        self.cfg.cycle_cap.unwrap_or(target * 120 + 4_000_000)
    }

    /// One full dense iteration at `cycle`: CPU side, warmup/ROI
    /// bookkeeping, then every memory tick the rational accumulator
    /// yields. Shared verbatim by both kernels — the event kernel merely
    /// decides *which* cycles run it.
    fn step(
        &mut self,
        cycle: u64,
        target: u64,
        warmup: u64,
        warm_cycle: &mut [Option<u64>],
        roi_ended: &mut [bool],
    ) {
        self.tick_cpu(cycle, target, warmup);
        for (i, c) in self.cores.iter_mut().enumerate() {
            if warm_cycle[i].is_none() && c.retired >= warmup {
                warm_cycle[i] = Some(cycle);
                c.begin_roi();
            }
            if !roi_ended[i] && c.finished_at.is_some() {
                roi_ended[i] = true;
                c.end_roi();
            }
        }
        // Memory clock: the device's exact rational (DDR4-2400: 3
        // ticks per 8 CPU cycles; the 3200 MT/s parts: 1 per 2).
        self.mem_tick_acc += self.tick_num;
        while self.mem_tick_acc >= self.tick_den {
            self.mem_tick_acc -= self.tick_den;
            self.tick_mem();
        }
    }

    /// The legacy reference kernel: every cycle runs [`System::step`].
    fn run_dense(mut self) -> (SimResult, RunTelemetry) {
        let warmup = self.cfg.warmup_insts;
        let target = warmup + self.cfg.insts_per_core;
        let cap = self.safety_cap(target);
        let mut warm_cycle = vec![None::<u64>; self.cores.len()];
        let mut roi_ended = vec![false; self.cores.len()];
        let mut cycle = 0u64;
        let mut events = 0u64;
        loop {
            self.step(cycle, target, warmup, &mut warm_cycle, &mut roi_ended);
            events += 1;
            cycle += 1;
            self.maybe_epoch(cycle);
            let all_done = self.cores.iter().all(|c| c.finished_at.is_some());
            if all_done || cycle >= cap {
                break;
            }
        }
        self.collect(cycle, target, warmup, &warm_cycle, events)
    }

    /// The event-driven kernel: after each processed cycle, jump straight
    /// to the next cycle at which anything observable can happen.
    fn run_event(mut self) -> (SimResult, RunTelemetry) {
        let warmup = self.cfg.warmup_insts;
        let target = warmup + self.cfg.insts_per_core;
        let cap = self.safety_cap(target);
        let mut warm_cycle = vec![None::<u64>; self.cores.len()];
        let mut roi_ended = vec![false; self.cores.len()];
        let mut cycle = 0u64;
        let mut events = 0u64;
        loop {
            self.step(cycle, target, warmup, &mut warm_cycle, &mut roi_ended);
            events += 1;
            cycle += 1;
            self.maybe_epoch(cycle);
            let all_done = self.cores.iter().all(|c| c.finished_at.is_some());
            if all_done || cycle >= cap {
                break;
            }
            // Skip the provably uninteresting span, never past the cap
            // (the skipped cycles still count: SimResult::cycles and the
            // mem-tick accumulator advance exactly as the dense loop's
            // no-op iterations would have advanced them).
            let mut next = self.next_interesting_cycle(cycle).min(cap);
            // Epoch sampling clamps the skip to the next boundary so the
            // sample is taken at its exact dense cycle — processing the
            // boundary cycle for real is safe (a no-op iteration, exactly
            // as the dense kernel would have run it).
            if let Some(ep) = &self.epoch {
                next = next.min((cycle / ep.every + 1) * ep.every);
            }
            if next > cycle {
                let span = next - cycle;
                for c in &mut self.cores {
                    c.skip(span);
                }
                let acc = self.mem_tick_acc + span * self.tick_num;
                self.mem_cycle += acc / self.tick_den;
                self.mem_tick_acc = acc % self.tick_den;
                cycle = next;
                self.maybe_epoch(cycle);
                if cycle >= cap {
                    break;
                }
            }
        }
        self.collect(cycle, target, warmup, &warm_cycle, events)
    }

    /// Fires the epoch probe when `cycle` is a sampling boundary. Every
    /// sample covers exactly `every` CPU cycles of history (its deltas are
    /// against the previous boundary); a trailing partial epoch is not
    /// sampled. Both kernels call this at every boundary — the dense loop
    /// passes through every cycle, the event loop clamps its skips — so
    /// the sequences match sample-for-sample.
    fn maybe_epoch(&mut self, cycle: u64) {
        let Some(ep) = &mut self.epoch else {
            return;
        };
        if cycle == 0 || !cycle.is_multiple_of(ep.every) {
            return;
        }
        let mut agg = EpochAgg::default();
        let mut read_q = 0u64;
        let mut write_q = 0u64;
        for ch in &self.channels {
            let s = ch.stats();
            agg.reads += s.reads_done;
            agg.writes += s.writes_done;
            agg.row_hits += s.row_hits;
            agg.dbus += s.data_bus_busy;
            agg.refresh_busy += s.refresh_busy;
            let (r, w) = ch.queue_depths();
            read_q += r as u64;
            write_q += w as u64;
        }
        let insts: u64 = self.cores.iter().map(|c| c.retired).sum();
        let d_insts = insts - ep.last_insts;
        let d_reads = agg.reads - ep.last.reads;
        let d_writes = agg.writes - ep.last.writes;
        let d_cas = d_reads + d_writes;
        let d_mem = self.mem_cycle - ep.last_mem_cycle;
        let epoch_ns = ep.every as f64 / self.cfg.clock().cpu_ghz();
        let frac = |num: u64, den: f64| if den > 0.0 { num as f64 / den } else { 0.0 };
        let banks = (self.cfg.channels * self.cfg.ranks * self.cfg.banks as usize) as f64;
        let sample = EpochSample {
            epoch: ep.index,
            cycle,
            mem_cycle: self.mem_cycle,
            insts: d_insts,
            ipc: d_insts as f64 / ep.every as f64,
            reads: d_reads,
            writes: d_writes,
            read_gbps: d_reads as f64 * 64.0 / epoch_ns,
            write_gbps: d_writes as f64 * 64.0 / epoch_ns,
            dbus_util: frac(
                agg.dbus - ep.last.dbus,
                d_mem as f64 * self.cfg.channels as f64,
            ),
            row_hit_rate: frac(agg.row_hits - ep.last.row_hits, d_cas as f64),
            read_q,
            write_q,
            refresh_occupancy: frac(
                agg.refresh_busy - ep.last.refresh_busy,
                d_mem as f64 * banks,
            ),
        };
        ep.index += 1;
        ep.last_insts = insts;
        ep.last_mem_cycle = self.mem_cycle;
        ep.last = agg;
        self.probes.on_epoch(&sample);
    }

    /// The earliest cycle at or after `cur` whose iteration can do
    /// anything: the minimum of the cores' wakes and the CPU cycle
    /// containing the channels' next memory-side event. Pending LLC→
    /// channel transfers pin the answer to `cur` (their retry runs inside
    /// every `tick_cpu`).
    fn next_interesting_cycle(&self, cur: u64) -> u64 {
        if !self.llc.fetch_queue.is_empty() || !self.llc.writeback_queue.is_empty() {
            return cur;
        }
        let mut wake = u64::MAX;
        for c in &self.cores {
            // Caches are refreshed whenever a core ticks and zeroed by
            // completions, so the minimum over them is always current.
            wake = wake.min(c.wake_cache);
            if wake <= cur {
                return cur;
            }
        }
        let mut tick = u64::MAX;
        for ch in &self.channels {
            tick = tick.min(ch.next_event(self.mem_cycle));
        }
        if tick != u64::MAX {
            wake = wake.min(self.cycle_of_tick(cur, tick));
        }
        wake.max(cur)
    }

    /// The CPU cycle (at or after `cur`) whose iteration processes the
    /// absolute memory tick `tick`, given the current accumulator state.
    fn cycle_of_tick(&self, cur: u64, tick: u64) -> u64 {
        debug_assert!(tick > self.mem_cycle);
        let pending = (tick - self.mem_cycle) as u128;
        // Smallest n >= 1 with acc + n * num >= pending * den; the tick
        // then fires inside the iteration at cur + n - 1.
        let need = pending * self.tick_den as u128 - self.mem_tick_acc as u128;
        let n = need.div_ceil(self.tick_num as u128);
        cur + n as u64 - 1
    }

    fn collect(
        mut self,
        cycle: u64,
        target: u64,
        warmup: u64,
        warm_cycle: &[Option<u64>],
        events: u64,
    ) -> (SimResult, RunTelemetry) {
        let ipc = self
            .cores
            .iter()
            .enumerate()
            .map(|(i, c)| {
                let start = warm_cycle[i].unwrap_or(0);
                let end = c.finished_at.unwrap_or(cycle);
                let insts = c.retired.min(target) - warmup.min(c.retired);
                insts as f64 / (end.saturating_sub(start).max(1)) as f64
            })
            .collect();
        let result = SimResult {
            ipc,
            workloads: self
                .cores
                .iter()
                .map(|c| c.workload_name().to_owned())
                .collect(),
            cycles: cycle,
            mem_cycles: self.mem_cycle,
            channel_stats: self.channels.iter().map(Channel::stats).collect(),
            mc_stats: self.channels.iter().flat_map(Channel::mc_stats).collect(),
            policy_stats: self
                .channels
                .iter()
                .flat_map(Channel::policy_stats)
                .collect(),
            plugin_stats: self
                .channels
                .iter()
                .flat_map(Channel::plugin_stats)
                .collect(),
        };
        self.probes.on_run_end(&result);
        let telemetry = RunTelemetry {
            events,
            peak_queue: self
                .channels
                .iter()
                .map(|ch| ch.peak_queue() as u64)
                .max()
                .unwrap_or(0),
        };
        (result, telemetry)
    }

    fn tick_cpu(&mut self, cycle: u64, target: u64, warmup: u64) {
        // Split borrows: cores vs the memory side.
        let System {
            cores,
            llc,
            channels,
            inflight,
            next_req_id,
            cfg,
            mem_cycle,
            ..
        } = self;
        let event = cfg.kernel == KernelMode::Event;
        for core in cores.iter_mut() {
            // Event kernel: a core whose cached wake lies ahead takes its
            // one-cycle mechanical advance (a no-op while blocked) instead
            // of a full tick — this cycle is being processed for some
            // other component's sake.
            if event && core.wake_cache > cycle {
                core.skip(1);
                continue;
            }
            let core_id = core.id;
            core.tick(cycle, target, |c, req| match req {
                CoreRequest::Load { line, entry } => {
                    match llc.access(line, false, Some((core_id, entry))) {
                        Access::Hit => {
                            c.complete_at(cycle + Llc::HIT_LATENCY, entry);
                            true
                        }
                        Access::Miss => true,
                        Access::Busy => false,
                    }
                }
                CoreRequest::Store { line } => {
                    matches!(llc.access(line, true, None), Access::Hit | Access::Miss)
                }
            });
            if event {
                core.wake_cache = core.next_wake(cycle + 1, target, warmup);
            }
        }
        // Move LLC fetches/writebacks into channel queues (with back-pressure).
        llc.fetch_queue.retain(|&line| {
            let addr = decode(cfg, line * 64);
            let ch = &mut channels[addr.channel];
            if ch.can_accept_read() {
                let id = *next_req_id;
                *next_req_id += 1;
                inflight.insert(id, line);
                ch.enqueue(MemRequest {
                    id,
                    addr,
                    is_write: false,
                    arrived: *mem_cycle,
                });
                false
            } else {
                true
            }
        });
        llc.writeback_queue.retain(|&line| {
            let addr = decode(cfg, line * 64);
            let ch = &mut channels[addr.channel];
            if ch.can_accept_write() {
                let id = *next_req_id;
                *next_req_id += 1;
                ch.enqueue(MemRequest {
                    id,
                    addr,
                    is_write: true,
                    arrived: *mem_cycle,
                });
                false
            } else {
                true
            }
        });
    }

    fn tick_mem(&mut self) {
        self.mem_cycle += 1;
        let now = self.mem_cycle;
        let System {
            cores,
            llc,
            channels,
            inflight,
            probes,
            ..
        } = self;
        for ch in channels.iter_mut() {
            for req_id in ch.tick_probed(now, probes) {
                if let Some(line) = inflight.remove(&req_id) {
                    let waiters: Vec<Waiter> = llc.fill(line);
                    for (core, entry) in waiters {
                        cores[core].complete(entry);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SystemConfig;
    use crate::policy::{self, PolicyHandle};
    use hira_workload::{mix_with_seed, random, stream, WorkloadHandle};

    /// The legacy `mixes(1, 8, seed)[0]` workloads, bit-identical through
    /// the handle frontend.
    fn legacy_mix(seed: u64) -> WorkloadHandle {
        mix_with_seed(0, seed)
    }

    fn tiny(refresh: PolicyHandle) -> SystemConfig {
        SystemConfig::table3(8.0, refresh).with_insts(4_000, 500)
    }

    #[test]
    fn a_mix_runs_to_completion_and_reports_ipc() {
        let cfg = tiny(policy::noref()).with_workload(legacy_mix(3));
        let r = System::new(cfg).run();
        assert_eq!(r.ipc.len(), 8);
        assert!(
            r.ipc.iter().all(|&x| x > 0.0 && x <= 4.0),
            "ipc {:?}",
            r.ipc
        );
        assert!(r.total_reads() > 0);
        // Per-core workload names are the mix members.
        assert_eq!(r.workloads.len(), 8);
        assert!(r
            .workloads
            .iter()
            .all(|n| hira_workload::benchmark(n).is_some()));
    }

    #[test]
    fn refresh_overhead_orders_the_schemes() {
        // NoRefresh ≥ HiRA ≥ Baseline in weighted speedup at high capacity.
        let capacity = 64.0;
        let mk = |r| {
            SystemConfig::table3(capacity, r)
                .with_insts(4_000, 500)
                .with_workload(legacy_mix(9))
        };
        let ideal = System::new(mk(policy::noref())).run();
        let alone: Vec<f64> = vec![1.0; 8]; // common weights: ratios only
        let ws_ideal = ideal.weighted_speedup(&alone);
        let base = System::new(mk(policy::baseline())).run();
        let ws_base = base.weighted_speedup(&alone);
        let hira = System::new(mk(policy::hira(2))).run();
        let ws_hira = hira.weighted_speedup(&alone);
        assert!(ws_ideal > ws_base, "ideal {ws_ideal} vs baseline {ws_base}");
        assert!(
            ws_hira > ws_base,
            "HiRA {ws_hira} should beat baseline {ws_base} at {capacity} Gb"
        );
    }

    #[test]
    fn determinism_same_seed_same_result() {
        let cfg = || tiny(policy::baseline()).with_workload(legacy_mix(5));
        let a = System::new(cfg()).run();
        let b = System::new(cfg()).run();
        assert_eq!(a.ipc, b.ipc);
        assert_eq!(a.cycles, b.cycles);
    }

    #[test]
    fn generator_workloads_drive_the_memory_system() {
        // The parametric family flows through the same frontend: streaming
        // traffic row-hits far more than uniform-random traffic.
        let run =
            |wl: WorkloadHandle| System::new(tiny(policy::baseline()).with_workload(wl)).run();
        let seq = run(stream());
        let rnd = run(random());
        assert!(seq.total_reads() > 0 && rnd.total_reads() > 0);
        assert!(
            seq.row_hit_rate() > rnd.row_hit_rate() + 0.2,
            "stream {} vs random {}",
            seq.row_hit_rate(),
            rnd.row_hit_rate()
        );
        assert_eq!(rnd.workloads, vec!["random"; 8]);
    }

    #[test]
    fn hira_mc_refreshes_rows_in_the_background() {
        let cfg = tiny(policy::hira(4)).with_workload(legacy_mix(7));
        let r = System::new(cfg).run();
        let mc = r.mc_stats.first().expect("HiRA-MC configured");
        assert!(mc.periodic_generated > 0);
        let served = mc.refresh_access + mc.refresh_refresh + mc.singles;
        assert!(
            served + 80 >= mc.periodic_generated,
            "served {served} of {} generated",
            mc.periodic_generated
        );
        // The policy-level counters agree with the HiRA-MC view.
        let ps = r.policy_stats.first().expect("policy stats");
        assert_eq!(ps.rows_refreshed, served);
    }

    #[test]
    fn new_policies_run_end_to_end() {
        // The open API's genuinely new arrangements simulate and land
        // between the ideal and nothing: refresh costs, never gains.
        let mk = |p| tiny(p).with_workload(legacy_mix(13));
        let ideal: f64 = System::new(mk(policy::noref())).run().ipc.iter().sum();
        for p in [policy::refpb(), policy::raidr()] {
            let name = p.name().to_owned();
            let r = System::new(mk(p)).run();
            let ipc: f64 = r.ipc.iter().sum();
            assert!(ipc > 0.0, "{name}: no forward progress");
            assert!(
                ipc <= ideal * 1.001,
                "{name}: refresh ({ipc}) beat the ideal bound ({ideal})"
            );
        }
    }
}
