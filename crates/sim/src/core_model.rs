//! Trace-driven out-of-order core model (Table 3: 4-wide issue, 128-entry
//! instruction window).
//!
//! A standard simple-OoO abstraction (as in Ramulator's `SimpleO3` core):
//! the window holds up to 128 in-flight instructions; up to 4 retire from
//! the head and up to 4 dispatch into the tail each cycle. Non-memory
//! instructions complete immediately; loads complete when the cache/memory
//! hierarchy answers; stores retire through a write buffer without waiting.

use hira_workload::{Op, Workload};
use std::collections::{HashSet, VecDeque};

/// Issue/retire width.
pub const WIDTH: usize = 4;
/// Instruction-window capacity.
pub const WINDOW: usize = 128;

#[derive(Debug, Clone, Copy)]
struct Slot {
    id: u64,
    done: bool,
}

/// What the core asks of the memory hierarchy this cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoreRequest {
    /// Load of a line; the entry id must be completed later.
    Load { line: u64, entry: u64 },
    /// Store to a line (fire and forget).
    Store { line: u64 },
}

/// One simulated core.
#[derive(Debug)]
pub struct Core {
    /// Core index.
    pub id: usize,
    wl: Box<dyn Workload>,
    window: VecDeque<Slot>,
    next_id: u64,
    completed: HashSet<u64>,
    /// Pending compute burst from the trace.
    compute_left: u32,
    /// A memory op that could not issue (back-pressure) and must retry.
    stalled_op: Option<Op>,
    /// Window slots with `done == false` (outstanding loads). Maintained
    /// incrementally so the event kernel's wake computation is O(1).
    undone: usize,
    /// Retired instruction count.
    pub retired: u64,
    /// Cycle at which `retired` first reached the measurement target.
    pub finished_at: Option<u64>,
    /// Scheduled completion times for LLC hits `(cycle, entry)`.
    hit_returns: VecDeque<(u64, u64)>,
    /// Event-kernel wake cache: the absolute cycle [`Core::next_wake`]
    /// last reported. Until then this core's ticks are covered by
    /// [`Core::skip`]; external completions reset it to 0 ("re-examine
    /// me"). The dense kernel never reads it.
    pub(crate) wake_cache: u64,
}

impl Core {
    /// Builds a core driven by the workload frontend `wl`.
    pub fn new(id: usize, wl: Box<dyn Workload>) -> Self {
        Core {
            id,
            wl,
            window: VecDeque::with_capacity(WINDOW),
            next_id: 0,
            completed: HashSet::new(),
            compute_left: 0,
            stalled_op: None,
            undone: 0,
            retired: 0,
            finished_at: None,
            hit_returns: VecDeque::new(),
            wake_cache: 0,
        }
    }

    /// The per-core workload instance name (for a multiprogrammed mix,
    /// the member benchmark this core runs).
    pub fn workload_name(&self) -> &str {
        self.wl.name()
    }

    /// Forwards the region-of-interest start to the workload frontend
    /// (called by the system when this core finishes warmup).
    pub fn begin_roi(&mut self) {
        self.wl.on_roi_begin();
    }

    /// Forwards the region-of-interest end to the workload frontend
    /// (called by the system when this core retires its budget).
    pub fn end_roi(&mut self) {
        self.wl.on_roi_end();
    }

    /// Marks a load entry complete (memory response).
    pub fn complete(&mut self, entry: u64) {
        self.completed.insert(entry);
        self.wake_cache = 0;
    }

    /// Schedules an LLC-hit completion.
    pub fn complete_at(&mut self, cycle: u64, entry: u64) {
        self.hit_returns.push_back((cycle, entry));
        self.wake_cache = 0;
    }

    /// Advances one CPU cycle. `issue` receives at most one memory request
    /// per cycle and returns `false` when the hierarchy cannot accept it.
    pub fn tick<F>(&mut self, cycle: u64, target_insts: u64, mut issue: F)
    where
        F: FnMut(&mut Self, CoreRequest) -> bool,
    {
        // Deliver due hit returns.
        while let Some(&(t, entry)) = self.hit_returns.front() {
            if t > cycle {
                break;
            }
            self.hit_returns.pop_front();
            self.completed.insert(entry);
        }

        // Retire up to WIDTH from the head.
        let mut retired_now = 0;
        while retired_now < WIDTH {
            let Some(head) = self.window.front().copied() else {
                break;
            };
            let done = head.done || self.completed.contains(&head.id);
            if !done {
                break;
            }
            self.completed.remove(&head.id);
            self.window.pop_front();
            if !head.done {
                self.undone -= 1;
            }
            self.retired += 1;
            retired_now += 1;
        }
        if self.finished_at.is_none() && self.retired >= target_insts {
            self.finished_at = Some(cycle);
        }

        // Dispatch up to WIDTH into the tail.
        let mut dispatched = 0;
        while dispatched < WIDTH && self.window.len() < WINDOW {
            if self.compute_left > 0 {
                self.compute_left -= 1;
                let id = self.bump();
                self.window.push_back(Slot { id, done: true });
                dispatched += 1;
                continue;
            }
            let op = match self.stalled_op.take() {
                Some(op) => op,
                None => self.wl.next_access(),
            };
            match op {
                Op::Compute(n) => {
                    self.compute_left = n;
                }
                Op::Load(addr) => {
                    let entry = self.bump();
                    if issue(
                        self,
                        CoreRequest::Load {
                            line: addr / 64,
                            entry,
                        },
                    ) {
                        self.window.push_back(Slot {
                            id: entry,
                            done: false,
                        });
                        self.undone += 1;
                        dispatched += 1;
                    } else {
                        // Back-pressure: retry the same op next cycle.
                        self.next_id -= 1;
                        self.stalled_op = Some(op);
                        break;
                    }
                }
                Op::Store(addr) => {
                    if issue(self, CoreRequest::Store { line: addr / 64 }) {
                        let id = self.bump();
                        self.window.push_back(Slot { id, done: true });
                        dispatched += 1;
                    } else {
                        self.stalled_op = Some(op);
                        break;
                    }
                }
            }
        }
    }

    fn bump(&mut self) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    /// Number of in-flight window entries.
    pub fn window_occupancy(&self) -> usize {
        self.window.len()
    }

    /// True when this core is in the *mechanical compute* state the event
    /// kernel can advance arithmetically: every window slot retires
    /// without consulting the completed set, at least a full issue width
    /// is resident, a full width of compute remains to dispatch, and no
    /// op is awaiting a back-pressure retry (retries touch LLC state
    /// every cycle, so they must tick densely). In this state each tick
    /// retires exactly [`WIDTH`] slots and dispatches exactly [`WIDTH`]
    /// fresh compute slots — the window length is invariant and the slot
    /// ids are dead state (done slots never match the completed set).
    fn mechanical(&self) -> bool {
        self.undone == 0
            && self.stalled_op.is_none()
            && self.compute_left as usize >= WIDTH
            && self.window.len() >= WIDTH
            && self.hit_returns.is_empty()
    }

    /// The first cycle at or after `now` whose [`Core::tick`] would do
    /// anything the event kernel cannot reproduce with [`Core::skip`] —
    /// the core's contribution to the kernel's next wake. Returns
    /// `u64::MAX` when only an external event (a fill delivered through
    /// [`Core::complete`]) can make this core progress; waking it earlier
    /// is always safe (the tick is then a no-op, exactly as in the dense
    /// kernel).
    pub fn next_wake(&self, now: u64, target: u64, warmup: u64) -> u64 {
        if self.mechanical() {
            // Mechanical ticks retire WIDTH each; the tick that exhausts
            // the compute burst (and so calls into the workload) and the
            // ticks crossing the warmup/target retirement thresholds
            // (observed by the run loop) must execute for real.
            let w = WIDTH as u64;
            let mut j = self.compute_left as u64 / w;
            if self.retired < target {
                j = j.min((target - self.retired).div_ceil(w) - 1);
            }
            if self.retired < warmup {
                j = j.min((warmup - self.retired).div_ceil(w) - 1);
            }
            return now + j;
        }
        if self.window.len() == WINDOW {
            let head = self.window.front().expect("full window has a head");
            if !head.done && !self.completed.contains(&head.id) {
                // Fully blocked: no retirement, no dispatch (the window-full
                // check precedes any stalled-op retry), no LLC traffic —
                // asleep until a hit return or an external fill.
                return self
                    .hit_returns
                    .front()
                    .map_or(u64::MAX, |&(t, _)| t.max(now));
            }
        }
        // Anything else (dispatching, retiring, retrying a stalled op,
        // draining a sub-width window) must tick densely.
        now
    }

    /// Advances this core over `span` cycles the kernel has proven
    /// uninteresting (every skipped cycle is strictly before the wake
    /// [`Core::next_wake`] reported, and no external completion arrived).
    /// A blocked core's state is untouched; a mechanical-compute core
    /// retires and dispatches [`WIDTH`] instructions per cycle in O(1).
    /// The window's slot ids intentionally go stale: done slots never
    /// consult the completed set, so only the window *length* — which is
    /// invariant here — and `next_id` are live state.
    pub fn skip(&mut self, span: u64) {
        if span == 0 || !self.mechanical() {
            return;
        }
        let insts = WIDTH as u64 * span;
        debug_assert!(self.compute_left as u64 >= insts, "skipped past a bubble");
        debug_assert!(self.completed.is_empty());
        self.retired += insts;
        self.compute_left -= insts as u32;
        self.next_id += insts;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hira_workload::{spec, WorkloadEnv};

    fn core(name: &str) -> Core {
        let env = WorkloadEnv {
            core: 0,
            cores: 1,
            seed: 1,
        };
        Core::new(0, spec(name).build(&env))
    }

    #[test]
    fn compute_bound_core_retires_at_full_width() {
        let mut c = core("povray");
        for cycle in 0..10_000 {
            c.tick(cycle, u64::MAX, |_c, req| match req {
                // Instant memory: complete immediately.
                CoreRequest::Load { entry, .. } => {
                    _c.complete(entry);
                    true
                }
                CoreRequest::Store { .. } => true,
            });
        }
        let ipc = c.retired as f64 / 10_000.0;
        assert!(ipc > 3.5, "compute-bound IPC {ipc}");
    }

    #[test]
    fn unanswered_loads_stall_the_window() {
        let mut c = core("mcf");
        for cycle in 0..5_000 {
            c.tick(cycle, u64::MAX, |_c, req| {
                matches!(req, CoreRequest::Store { .. } | CoreRequest::Load { .. })
            });
        }
        // Loads never complete: the window fills and retirement stops.
        assert!(
            c.window_occupancy() == WINDOW,
            "window {}",
            c.window_occupancy()
        );
        let stuck = c.retired;
        for cycle in 5_000..6_000 {
            c.tick(cycle, u64::MAX, |_, _| true);
        }
        assert_eq!(c.retired, stuck, "retired without memory answers");
    }

    #[test]
    fn completions_unblock_retirement() {
        let mut c = core("mcf");
        let mut pending = Vec::new();
        for cycle in 0..2_000 {
            c.tick(cycle, u64::MAX, |_c, req| {
                if let CoreRequest::Load { entry, .. } = req {
                    pending.push(entry);
                }
                true
            });
            // Answer loads with a 100-cycle delay pattern.
            if cycle % 100 == 0 {
                for e in pending.drain(..) {
                    c.complete(e);
                }
            }
        }
        assert!(c.retired > 1_000, "retired {}", c.retired);
    }

    #[test]
    fn back_pressure_retries_the_same_op() {
        let mut c = core("lbm");
        let mut rejected = 0;
        let mut accepted = 0;
        for cycle in 0..2_000 {
            c.tick(cycle, u64::MAX, |_c, req| {
                if cycle < 500 {
                    rejected += 1;
                    false
                } else {
                    if let CoreRequest::Load { entry, .. } = req {
                        _c.complete(entry);
                    }
                    accepted += 1;
                    true
                }
            });
        }
        assert!(rejected > 0 && accepted > 0);
        assert!(c.retired > 0);
    }

    #[test]
    fn finish_line_is_recorded_once() {
        let mut c = core("povray");
        for cycle in 0..5_000 {
            c.tick(cycle, 1_000, |_c, req| {
                if let CoreRequest::Load { entry, .. } = req {
                    _c.complete(entry);
                }
                true
            });
        }
        let t = c.finished_at.expect("must finish");
        assert!(t < 2_000, "finished at {t}");
    }
}
