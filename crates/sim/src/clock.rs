//! Clock domains and conversions.
//!
//! The simulator's outer loop runs in CPU cycles; the memory side works in
//! *memory cycles* (command-clock ticks) and converts to nanoseconds when
//! talking to `hira-core`. Which command clock — and therefore which
//! CPU↔memory ratio — is a property of the configured **device**
//! ([`crate::device::DeviceProfile`]), not of this module: a DDR4-2400
//! part ticks at 1.2 GHz (3 memory ticks per 8 CPU cycles at the Table 3
//! 3.2 GHz CPU), a DDR4-3200 or LPDDR4-3200 part at 1.6 GHz (1 per 2).
//!
//! [`MemClock`] bundles both frequencies plus the exact rational tick
//! ratio, so the outer loop can accumulate memory ticks in integer
//! arithmetic (bit-identical across runs and thread counts) while the
//! ns conversions stay in floating point.

/// A timestamp or duration in memory cycles.
pub type MemCycle = u64;

/// One CPU-clock/command-clock pairing: frequencies plus the exact
/// `memory ticks per CPU cycle` rational the outer simulation loop uses.
///
/// Constructed from a [`crate::device::DeviceProfile`] (the device is the
/// source of truth for the command clock); [`MemClock::ddr4_2400`] is the
/// Table 3 reference pairing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemClock {
    cpu_ghz: f64,
    mem_ghz: f64,
    /// Command-clock period in ns (cached `1 / mem_ghz`).
    t_ck_ns: f64,
    /// Memory ticks accumulated per CPU cycle, as an exact rational.
    ticks_num: u64,
    ticks_den: u64,
}

impl MemClock {
    /// Builds a clock pairing. `ticks` is the exact
    /// `(numerator, denominator)` of memory-ticks-per-CPU-cycle; it is
    /// supplied explicitly (rather than derived from the float
    /// frequencies) so the integer tick accumulator is exact by
    /// construction.
    ///
    /// # Panics
    ///
    /// Panics when a frequency is non-positive, the rational is
    /// degenerate, or the rational disagrees with `mem_ghz / cpu_ghz` by
    /// more than float noise — a mismatched ratio would silently desync
    /// the ns and cycle time bases.
    pub fn new(cpu_ghz: f64, mem_ghz: f64, ticks: (u64, u64)) -> Self {
        let (num, den) = ticks;
        assert!(
            cpu_ghz > 0.0 && mem_ghz > 0.0,
            "clock rates must be positive"
        );
        assert!(num > 0 && den > 0, "tick ratio must be a positive rational");
        let ratio = mem_ghz / cpu_ghz;
        assert!(
            (ratio - num as f64 / den as f64).abs() < 1e-9,
            "tick ratio {num}/{den} does not match {mem_ghz}/{cpu_ghz} GHz"
        );
        MemClock {
            cpu_ghz,
            mem_ghz,
            t_ck_ns: 1.0 / mem_ghz,
            ticks_num: num,
            ticks_den: den,
        }
    }

    /// The Table 3 reference pairing: 3.2 GHz CPU over a DDR4-2400
    /// command clock (1.2 GHz) — 3 memory ticks per 8 CPU cycles.
    pub fn ddr4_2400() -> Self {
        MemClock::new(3.2, 1.2, (3, 8))
    }

    /// CPU clock frequency in GHz.
    pub fn cpu_ghz(&self) -> f64 {
        self.cpu_ghz
    }

    /// Memory command-clock frequency in GHz.
    pub fn mem_ghz(&self) -> f64 {
        self.mem_ghz
    }

    /// Memory command-clock period in ns.
    pub fn t_ck_ns(&self) -> f64 {
        self.t_ck_ns
    }

    /// The exact `(numerator, denominator)` of memory ticks accumulated
    /// per CPU cycle — the outer loop's integer accumulator constants.
    pub fn mem_ticks_per_cpu_cycle(&self) -> (u64, u64) {
        (self.ticks_num, self.ticks_den)
    }

    /// CPU cycles per memory tick (the [`crate::device::DeviceProfile`]'s
    /// headline ratio, as a float for display).
    pub fn cpu_cycles_per_mem_tick(&self) -> f64 {
        self.cpu_ghz / self.mem_ghz
    }

    /// Converts nanoseconds to memory cycles, rounding up (a constraint
    /// of `x` ns cannot be satisfied earlier than the covering command
    /// slot).
    #[inline]
    pub fn ns_to_cycles(&self, ns: f64) -> MemCycle {
        (ns * self.mem_ghz).ceil() as MemCycle
    }

    /// Converts memory cycles to nanoseconds.
    #[inline]
    pub fn cycles_to_ns(&self, c: MemCycle) -> f64 {
        c as f64 * self.t_ck_ns
    }

    /// The first command-clock cycle `c` whose timestamp satisfies
    /// `cycles_to_ns(c) >= due_ns` — evaluated with the *same* float
    /// expression the dense loop uses when it compares `now_ns` against a
    /// policy deadline, so an event-driven kernel waking at this cycle
    /// triggers on exactly the tick the dense loop would have.
    ///
    /// A naive `ceil(due_ns * mem_ghz)` can be off by one in either
    /// direction (e.g. `7800.0 * 1.2` rounds to `9360.000000000002`, whose
    /// ceiling overshoots the tick the dense comparison accepts), so the
    /// float guess is corrected against the dense predicate itself.
    /// Non-positive and NaN deadlines wake immediately; deadlines beyond
    /// any simulatable horizon return [`MemCycle::MAX`] ("never").
    pub fn wake_cycle(&self, due_ns: f64) -> MemCycle {
        if due_ns.is_nan() || due_ns <= 0.0 {
            return 0;
        }
        if due_ns > 1e18 {
            return MemCycle::MAX;
        }
        let mut c = (due_ns * self.mem_ghz).ceil() as MemCycle;
        while c > 0 && (c - 1) as f64 * self.t_ck_ns >= due_ns {
            c -= 1;
        }
        while (c as f64) * self.t_ck_ns < due_ns {
            c += 1;
        }
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_matches_frequencies() {
        let c = MemClock::ddr4_2400();
        assert!((c.cpu_ghz() / c.mem_ghz() - 8.0 / 3.0).abs() < 1e-12);
        assert_eq!(c.mem_ticks_per_cpu_cycle(), (3, 8));
        let fast = MemClock::new(3.2, 1.6, (1, 2));
        assert_eq!(fast.mem_ticks_per_cpu_cycle(), (1, 2));
        assert!((fast.cpu_cycles_per_mem_tick() - 2.0).abs() < 1e-12);
    }

    /// Regression pin: the DDR4-2400 conversions the whole tracked
    /// baseline was produced under. These exact values must survive the
    /// clock becoming device-parametric.
    #[test]
    fn ddr4_2400_conversions_are_pinned() {
        let c = MemClock::ddr4_2400();
        // tRC = 46.25 ns → 56 cycles (46.67 ns): never early.
        assert_eq!(c.ns_to_cycles(46.25), 56);
        assert!(c.cycles_to_ns(56) >= 46.25);
        // Exact multiples stay exact.
        assert_eq!(c.ns_to_cycles(c.cycles_to_ns(40)), 40);
        // t1 = 3 ns → 4 command cycles.
        assert_eq!(c.ns_to_cycles(3.0), 4);
        // Table 3 staples on the 1.2 GHz grid.
        assert_eq!(c.ns_to_cycles(7800.0), 9360); // tREFI
        assert_eq!(c.ns_to_cycles(32.0), 39); // tRAS
        assert_eq!(c.ns_to_cycles(14.25), 18); // tRP / tRCD / tCL
        assert_eq!(c.ns_to_cycles(16.0), 20); // tFAW
    }

    #[test]
    fn faster_grids_cover_ns_constraints_sooner() {
        let slow = MemClock::ddr4_2400();
        let fast = MemClock::new(3.2, 1.6, (1, 2));
        // 46.25 ns on the 1.6 GHz grid: 74 cycles of 0.625 ns.
        assert_eq!(fast.ns_to_cycles(46.25), 74);
        assert!(fast.cycles_to_ns(fast.ns_to_cycles(46.25)) <= slow.cycles_to_ns(56));
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn mismatched_rationals_are_rejected() {
        MemClock::new(3.2, 1.2, (1, 2));
    }

    /// The event kernel's wake conversion must agree with the dense loop's
    /// trigger predicate (`c as f64 * t_ck_ns >= due`) on every deadline —
    /// including the float-noise cases where `ceil(due * mem_ghz)` is off
    /// by one (tREFI = 7800 ns on the 1.2 GHz grid is one such).
    #[test]
    fn wake_cycle_matches_the_dense_trigger_predicate() {
        for clock in [MemClock::ddr4_2400(), MemClock::new(3.2, 1.6, (1, 2))] {
            let dense_first = |due: f64| (0..).find(|&c| clock.cycles_to_ns(c) >= due).unwrap();
            for due in [
                0.0,
                0.1,
                3.0,
                46.25,
                975.5,
                7800.0,
                15600.0,
                23400.0,
                61.03515625,
            ] {
                assert_eq!(
                    clock.wake_cycle(due),
                    dense_first(due),
                    "due {due} ns on {} GHz",
                    clock.mem_ghz()
                );
            }
            // Multiples of tREFI are where naive ceil rounding bites.
            for k in 1..200u64 {
                let due = 7800.0 * k as f64;
                let c = clock.wake_cycle(due);
                assert!(clock.cycles_to_ns(c) >= due);
                assert!(c == 0 || clock.cycles_to_ns(c - 1) < due, "late at {due}");
            }
        }
        // Degenerate deadlines: never-wakes and immediate wakes.
        let c = MemClock::ddr4_2400();
        assert_eq!(c.wake_cycle(f64::INFINITY), MemCycle::MAX);
        assert_eq!(c.wake_cycle(f64::NAN), 0);
        assert_eq!(c.wake_cycle(-5.0), 0);
    }
}
