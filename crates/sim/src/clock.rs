//! Clock domains and conversions.
//!
//! The CPU runs at 3.2 GHz and the DDR4-2400 command clock at 1.2 GHz —
//! a ratio of 8:3. The simulator's outer loop runs in CPU cycles and
//! accumulates fractional memory ticks; the memory side works in *memory
//! cycles* and converts to nanoseconds when talking to `hira-core`.

/// CPU clock frequency in GHz (Table 3).
pub const CPU_GHZ: f64 = 3.2;

/// DDR4-2400 command clock in GHz.
pub const MEM_GHZ: f64 = 1.2;

/// Memory command-clock period in ns.
pub const T_CK_NS: f64 = 1.0 / MEM_GHZ;

/// Memory ticks accumulated per CPU cycle, as a rational (3 per 8).
pub const MEM_PER_CPU_NUM: u64 = 3;
/// Denominator of the memory-per-CPU ratio.
pub const MEM_PER_CPU_DEN: u64 = 8;

/// A timestamp or duration in memory cycles.
pub type MemCycle = u64;

/// Converts nanoseconds to memory cycles, rounding up (a constraint of
/// `x` ns cannot be satisfied earlier than the covering command slot).
#[inline]
pub fn ns_to_cycles(ns: f64) -> MemCycle {
    (ns * MEM_GHZ).ceil() as MemCycle
}

/// Converts memory cycles to nanoseconds.
#[inline]
pub fn cycles_to_ns(c: MemCycle) -> f64 {
    c as f64 * T_CK_NS
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_matches_frequencies() {
        assert!(
            (CPU_GHZ / MEM_GHZ - MEM_PER_CPU_DEN as f64 / MEM_PER_CPU_NUM as f64).abs() < 1e-12
        );
    }

    #[test]
    fn ns_round_trips_conservatively() {
        // tRC = 46.25 ns → 56 cycles (46.67 ns): never early.
        let c = ns_to_cycles(46.25);
        assert_eq!(c, 56);
        assert!(cycles_to_ns(c) >= 46.25);
        // Exact multiples stay exact.
        assert_eq!(ns_to_cycles(cycles_to_ns(40)), 40);
    }

    #[test]
    fn hira_lead_rounds_to_command_slots() {
        // t1 = 3 ns → 4 command cycles.
        assert_eq!(ns_to_cycles(3.0), 4);
    }
}
