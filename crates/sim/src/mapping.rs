//! MOP address mapping (Table 3; Kaseridis et al., ref \[68\]).
//!
//! Minimalist Open Page interleaves a small run of consecutive cache lines
//! (the MOP width, 4 lines here) in the same row, then stripes across
//! channels, then banks/bank groups, then ranks, with the row bits on top.
//! This keeps some spatial locality in the open row while spreading streams
//! over banks — the paper's configuration.

use crate::config::SystemConfig;
use crate::request::Decoded;
use hira_dram::addr::RowId;

/// Cache-line size in bytes.
pub const LINE_BYTES: u64 = 64;

/// Consecutive lines kept in one row before striping (MOP width).
pub const MOP_WIDTH: u64 = 4;

/// Decodes a physical byte address into DRAM coordinates.
///
/// Bit layout (from LSB): line offset | MOP run | channel | bank group |
/// bank-in-group | rank | column-high | row.
pub fn decode(cfg: &SystemConfig, addr: u64) -> Decoded {
    let line = addr / LINE_BYTES;
    let mut x = line;

    let mop = x % MOP_WIDTH;
    x /= MOP_WIDTH;
    let channel = (x % cfg.channels as u64) as usize;
    x /= cfg.channels as u64;
    let bank_group = (x % u64::from(cfg.bank_groups)) as u16;
    x /= u64::from(cfg.bank_groups);
    let banks_per_group = cfg.banks / cfg.bank_groups;
    let bank_in_group = (x % u64::from(banks_per_group)) as u16;
    x /= u64::from(banks_per_group);
    let rank = (x % cfg.ranks as u64) as usize;
    x /= cfg.ranks as u64;
    // 8 KB row of 64 B lines = 128 columns; MOP_WIDTH low ones already used.
    let col_high = x % (128 / MOP_WIDTH);
    x /= 128 / MOP_WIDTH;
    let row = (x % u64::from(cfg.rows_per_bank())) as u32;

    let decoded = Decoded {
        channel,
        rank,
        bank: bank_group * banks_per_group + bank_in_group,
        bank_group,
        row: RowId(row),
        col: (col_high * MOP_WIDTH + mop) as u16,
    };
    // The flat-bank / bank-group invariant documented on `Decoded`: the
    // redundant group field must always agree with the flat index.
    debug_assert_eq!(
        decoded.bank_group,
        decoded.bank / banks_per_group,
        "decode broke the flat-bank/bank-group invariant at addr {addr:#x}"
    );
    decoded
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy;

    fn cfg() -> SystemConfig {
        SystemConfig::table3(8.0, policy::baseline()).with_geometry(2, 2)
    }

    #[test]
    fn consecutive_lines_share_a_row_within_the_mop_run() {
        let c = cfg();
        let base = 0x1234_0000u64;
        let d0 = decode(&c, base);
        let d1 = decode(&c, base + 64);
        // Within a MOP run: same everything except column.
        if d0.col % MOP_WIDTH as u16 != MOP_WIDTH as u16 - 1 {
            assert_eq!(d0.row, d1.row);
            assert_eq!(d0.bank, d1.bank);
            assert_eq!(d0.channel, d1.channel);
        }
    }

    #[test]
    fn mop_runs_stripe_across_channels() {
        let c = cfg();
        let base = 0u64;
        let d0 = decode(&c, base);
        let d1 = decode(&c, base + 64 * MOP_WIDTH);
        assert_ne!(d0.channel, d1.channel);
    }

    #[test]
    fn decode_is_a_function_of_address_only() {
        let c = cfg();
        assert_eq!(decode(&c, 0xABCD_EF00), decode(&c, 0xABCD_EF00));
    }

    #[test]
    fn fields_stay_in_range_over_a_sweep() {
        let c = cfg();
        for i in 0..10_000u64 {
            let d = decode(&c, i * 64 * 7919);
            assert!(d.channel < c.channels);
            assert!(d.rank < c.ranks);
            assert!(d.bank < c.banks);
            assert!(d.bank_group < c.bank_groups);
            assert!(d.row.0 < c.rows_per_bank());
            assert!(d.col < 128);
            let banks_per_group = c.banks / c.bank_groups;
            assert_eq!(d.bank / banks_per_group, d.bank_group);
        }
    }

    #[test]
    fn decode_round_trip_upholds_the_flat_bank_invariant() {
        // The invariant documented on `Decoded`: bank_group is redundant
        // with the flat bank index, for every geometry we sweep.
        for (banks, groups) in [(16u16, 4u16), (8, 2), (8, 4), (4, 1)] {
            let mut c = cfg();
            c.banks = banks;
            c.bank_groups = groups;
            let per_group = banks / groups;
            for i in 0..4_096u64 {
                let d = decode(&c, i * 64 * 131);
                assert_eq!(
                    d.bank_group,
                    d.bank / per_group,
                    "banks={banks} groups={groups} addr={i}"
                );
                assert!(d.bank < banks);
            }
        }
    }

    #[test]
    fn distinct_rows_reached_for_large_strides() {
        let c = cfg();
        let d0 = decode(&c, 0);
        let big = decode(&c, 1u64 << 30);
        assert_ne!(d0.row, big.row);
    }
}
