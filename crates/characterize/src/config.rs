//! Experiment scale configuration.
//!
//! The paper tests the first/middle/last 2 K rows of bank 0 per module
//! (§4.1 footnote 4) and every `RowB` against every `RowA`. That is feasible
//! on an FPGA running for days; the software default scales the row counts
//! down while keeping the methodology identical. `paper_scale()` restores the
//! published scale.

use hira_dram::timing::HiraTimings;

/// Knobs controlling experiment scale (not methodology).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CharacterizeConfig {
    /// Rows tested per region (first/middle/last of the bank). Paper: 2048.
    pub rows_per_region: u32,
    /// Stride when sampling `RowB` partners in Algorithm 1 (1 = every row,
    /// as in the paper).
    pub row_b_stride: usize,
    /// Stride when choosing the `RowA` rows whose coverage is measured.
    pub row_a_stride: usize,
    /// Number of victim rows for the Algorithm 2 threshold measurements.
    pub nrh_victims: usize,
    /// HiRA timing parameters under test.
    pub hira: HiraTimings,
    /// Binary-search floor for the RowHammer threshold.
    pub nrh_search_lo: u32,
    /// Binary-search ceiling for the RowHammer threshold.
    pub nrh_search_hi: u32,
    /// Relative resolution at which the binary search stops.
    pub nrh_resolution: f64,
}

impl CharacterizeConfig {
    /// Fast default: enough rows for stable statistics, seconds of runtime.
    pub fn fast() -> Self {
        CharacterizeConfig {
            rows_per_region: 48,
            row_b_stride: 2,
            row_a_stride: 2,
            nrh_victims: 24,
            hira: HiraTimings::nominal(),
            nrh_search_lo: 2_000,
            nrh_search_hi: 200_000,
            nrh_resolution: 0.02,
        }
    }

    /// Published scale (§4.1): 3 × 2048 rows, exhaustive RowB sweep.
    pub fn paper_scale() -> Self {
        CharacterizeConfig {
            rows_per_region: 2_048,
            row_b_stride: 1,
            row_a_stride: 1,
            nrh_victims: 256,
            ..Self::fast()
        }
    }

    /// Same methodology with custom HiRA timings (the Fig. 4 sweep).
    pub fn with_hira(mut self, hira: HiraTimings) -> Self {
        self.hira = hira;
        self
    }
}

impl Default for CharacterizeConfig {
    fn default() -> Self {
        Self::fast()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scale_matches_section_4_1() {
        let c = CharacterizeConfig::paper_scale();
        assert_eq!(c.rows_per_region, 2048);
        assert_eq!(c.row_b_stride, 1);
    }

    #[test]
    fn with_hira_overrides_timings() {
        let c = CharacterizeConfig::fast().with_hira(HiraTimings { t1: 1.5, t2: 6.0 });
        assert_eq!(c.hira.t1, 1.5);
        assert_eq!(c.hira.t2, 6.0);
    }
}
