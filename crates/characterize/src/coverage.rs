//! Algorithm 1: HiRA coverage measurement (§4.2).
//!
//! For a given `RowA`, coverage is the fraction of other tested rows `RowB`
//! that HiRA can activate concurrently with `RowA` without corrupting either
//! row, for all four data patterns. The implementation follows the paper's
//! listing exactly: initialize the pair with inverse patterns, run the
//! `ACT — t1 — PRE — t2 — ACT — tRAS — PRE` sequence, read both rows back and
//! compare.

use crate::config::CharacterizeConfig;
use crate::stats::BoxStats;
use hira_dram::addr::{BankId, RowId};
use hira_dram::timing::HiraTimings;
use hira_softmc::patterns::DataPattern;
use hira_softmc::program::Program;
use hira_softmc::SoftMc;

/// Per-row coverage results for one `(t1, t2)` configuration.
#[derive(Debug, Clone)]
pub struct CoverageResult {
    /// Timing configuration tested.
    pub hira: HiraTimings,
    /// Bank tested.
    pub bank: BankId,
    /// `(RowA, coverage ∈ [0,1])` for every tested row.
    pub per_row: Vec<(RowId, f64)>,
}

impl CoverageResult {
    /// Distribution summary across tested rows (one Fig. 4 box).
    pub fn stats(&self) -> BoxStats {
        let xs: Vec<f64> = self.per_row.iter().map(|&(_, c)| c).collect();
        BoxStats::from_samples(&xs)
    }

    /// The set of rows with zero coverage (§4.2 observation 3).
    pub fn zero_coverage_rows(&self) -> Vec<RowId> {
        self.per_row
            .iter()
            .filter(|&&(_, c)| c == 0.0)
            .map(|&(r, _)| r)
            .collect()
    }
}

/// One cell of the Fig. 4 grid.
#[derive(Debug, Clone)]
pub struct CoverageGridPoint {
    /// Timing configuration of this grid cell.
    pub hira: HiraTimings,
    /// Coverage distribution across tested rows.
    pub stats: BoxStats,
}

/// Tests whether HiRA can concurrently activate `row_a` and `row_b` without
/// bit flips under any of the four data patterns (Algorithm 1, inner loop).
pub fn pair_works(
    mc: &mut SoftMc,
    bank: BankId,
    row_a: RowId,
    row_b: RowId,
    hira: HiraTimings,
) -> bool {
    let t = *mc.module().timing();
    for pattern in DataPattern::ALL {
        let mut p = Program::new();
        p.write_row(bank, row_a, pattern)
            .write_row(bank, row_b, pattern.inverse())
            .hira(bank, row_a, row_b, hira.t1, hira.t2, t.t_ras, t.t_rp)
            .read_row(bank, row_a)
            .read_row(bank, row_b);
        let r = mc.run(&p);
        let flips_a = r.flips_of(bank, row_a, pattern).expect("row A read back");
        let flips_b = r
            .flips_of(bank, row_b, pattern.inverse())
            .expect("row B read back");
        if flips_a + flips_b > 0 {
            return false;
        }
    }
    true
}

/// Measures HiRA coverage of every configured `RowA` in `bank`
/// (Algorithm 1, outer loops).
pub fn measure(mc: &mut SoftMc, bank: BankId, cfg: &CharacterizeConfig) -> CoverageResult {
    let tested = mc.module().geometry().tested_rows(cfg.rows_per_region);
    let row_as: Vec<RowId> = tested
        .iter()
        .copied()
        .step_by(cfg.row_a_stride.max(1))
        .collect();
    let row_bs: Vec<RowId> = tested
        .iter()
        .copied()
        .step_by(cfg.row_b_stride.max(1))
        .collect();

    let mut per_row = Vec::with_capacity(row_as.len());
    for &row_a in &row_as {
        let mut works = 0usize;
        let mut probed = 0usize;
        for &row_b in &row_bs {
            if row_b == row_a {
                continue;
            }
            probed += 1;
            if pair_works(mc, bank, row_a, row_b, cfg.hira) {
                works += 1;
            }
        }
        let coverage = if probed == 0 {
            0.0
        } else {
            works as f64 / probed as f64
        };
        per_row.push((row_a, coverage));
    }
    CoverageResult {
        hira: cfg.hira,
        bank,
        per_row,
    }
}

/// Sweeps the Fig. 4 `t1 × t2` grid on one module/bank.
pub fn figure4_grid(
    mc: &mut SoftMc,
    bank: BankId,
    cfg: &CharacterizeConfig,
) -> Vec<CoverageGridPoint> {
    HiraTimings::figure4_grid()
        .into_iter()
        .map(|hira| {
            let result = measure(mc, bank, &cfg.with_hira(hira));
            CoverageGridPoint {
                hira,
                stats: result.stats(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hira_dram::ModuleSpec;

    fn tiny_cfg() -> CharacterizeConfig {
        CharacterizeConfig {
            rows_per_region: 16,
            row_a_stride: 4,
            row_b_stride: 2,
            ..CharacterizeConfig::fast()
        }
    }

    #[test]
    fn nominal_timing_yields_coverage_near_isolation_target() {
        let spec = ModuleSpec::sk_hynix_4gb(0x11);
        // At this scale each tested region sits inside one subarray, so 1/3
        // of each row's partners are structurally excluded (same/adjacent
        // subarray) and the expected coverage is target × 2/3.
        let expected = spec.isolation_target * 2.0 / 3.0;
        let mut mc = SoftMc::new(spec);
        let r = measure(&mut mc, BankId(0), &tiny_cfg());
        let s = r.stats();
        assert!(
            (s.mean - expected).abs() < 0.1,
            "coverage mean {} vs expected {expected}",
            s.mean
        );
        assert!(
            r.zero_coverage_rows().is_empty(),
            "no zero-coverage rows at t1=t2=3ns"
        );
    }

    #[test]
    fn too_small_t1_collapses_coverage() {
        let mut mc = SoftMc::new(ModuleSpec::sk_hynix_4gb(0x12));
        let cfg = tiny_cfg().with_hira(HiraTimings { t1: 1.5, t2: 3.0 });
        let r = measure(&mut mc, BankId(0), &cfg);
        let s = r.stats();
        assert!(s.mean < 0.1, "t1=1.5ns coverage mean {}", s.mean);
        assert!(
            !r.zero_coverage_rows().is_empty(),
            "expected zero-coverage rows"
        );
    }

    #[test]
    fn too_large_t1_collapses_coverage() {
        let mut mc = SoftMc::new(ModuleSpec::sk_hynix_4gb(0x13));
        let cfg = tiny_cfg().with_hira(HiraTimings { t1: 6.0, t2: 3.0 });
        let r = measure(&mut mc, BankId(0), &cfg);
        assert!(
            r.stats().mean < 0.1,
            "t1=6ns coverage mean {}",
            r.stats().mean
        );
    }

    #[test]
    fn pair_works_is_deterministic() {
        let mut mc = SoftMc::new(ModuleSpec::sk_hynix_4gb(0x14));
        let a = RowId(0);
        let b = RowId(8 * 512);
        let first = pair_works(&mut mc, BankId(0), a, b, HiraTimings::nominal());
        let second = pair_works(&mut mc, BankId(0), a, b, HiraTimings::nominal());
        assert_eq!(first, second);
    }
}
