//! Algorithm 2: verifying HiRA's second row activation (§4.3).
//!
//! A "no bit flips" outcome of Algorithm 1 is ambiguous: either HiRA worked,
//! or the chip silently ignored the second `ACT`. Algorithm 2 disambiguates
//! by measuring a victim row's RowHammer threshold twice — once with a
//! mid-attack HiRA refresh of the victim and once waiting the same duration —
//! via binary search. If the second activation is real, the threshold roughly
//! doubles (the victim's disturbance is scrubbed halfway through).

use crate::adjacency::aggressors_via_mapping;
use crate::config::CharacterizeConfig;
use hira_dram::addr::{BankId, RowId};
use hira_dram::geometry::ChipGeometry;
use hira_dram::timing::HiraTimings;
use hira_softmc::patterns::DataPattern;
use hira_softmc::program::Program;
use hira_softmc::SoftMc;

/// Thresholds measured for one victim row.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NrhMeasurement {
    /// Victim row.
    pub victim: RowId,
    /// Measured threshold without HiRA (total aggressor activations).
    pub without_hira: u32,
    /// Measured threshold with a mid-attack HiRA refresh of the victim.
    pub with_hira: u32,
}

impl NrhMeasurement {
    /// `with / without` — the normalized RowHammer threshold of Fig. 5b/6.
    pub fn normalized(&self) -> f64 {
        f64::from(self.with_hira) / f64::from(self.without_hira)
    }
}

/// Runs one Algorithm 2 trial: returns `true` if the victim flips at total
/// hammer count `hc`.
#[allow(clippy::too_many_arguments)]
pub fn trial_flips(
    mc: &mut SoftMc,
    bank: BankId,
    victim: RowId,
    dummy: RowId,
    aggressors: &[RowId],
    hira: HiraTimings,
    with_hira: bool,
    hc: u32,
) -> bool {
    let t = *mc.module().timing();
    let (aggr_a, aggr_b) = match *aggressors {
        [a, b] => (a, b),
        [a] => (a, a),
        _ => panic!("victim must have 1 or 2 aggressors"),
    };
    let mut flips = 0u64;
    // Two polarities so flip direction cannot mask the disturbance; the
    // paper's four patterns reduce to these two for threshold purposes.
    for pattern in [DataPattern::Ones, DataPattern::Zeros] {
        let mut p = Program::new();
        // Step 1: initialize victim, dummy and aggressor rows.
        p.write_row(bank, victim, pattern)
            .write_row(bank, dummy, pattern.inverse())
            .write_row(bank, aggr_a, pattern.inverse());
        if aggr_b != aggr_a {
            p.write_row(bank, aggr_b, pattern.inverse());
        }
        // Step 2: first half of the hammers (hc/2 per-victim disturbances =
        // hc/4 double-sided loop iterations).
        p.hammer_pair(bank, aggr_a, aggr_b, hc / 4);
        // Step 3: HiRA refresh of the victim, or an equal-length wait.
        if with_hira {
            p.act_wait(bank, dummy, hira.t1)
                .pre_wait(bank, hira.t2)
                .act_wait(bank, victim, t.t_ras)
                .pre_wait(bank, t.t_rp);
        } else {
            p.wait(hira.t1 + hira.t2 + t.t_ras + t.t_rp);
        }
        // Step 4: second half of the hammers.
        p.hammer_pair(bank, aggr_a, aggr_b, hc / 4);
        // Step 5: check the victim for bit flips.
        p.read_row(bank, victim);
        let r = mc.run(&p);
        flips += r.flips_of(bank, victim, pattern).expect("victim read back");
    }
    flips > 0
}

/// Binary-searches the minimum hammer count that flips the victim
/// (the RowHammer threshold), as in prior work [79, 129, 180].
#[allow(clippy::too_many_arguments)]
pub fn search_threshold(
    mc: &mut SoftMc,
    bank: BankId,
    victim: RowId,
    dummy: RowId,
    aggressors: &[RowId],
    hira: HiraTimings,
    with_hira: bool,
    cfg: &CharacterizeConfig,
) -> u32 {
    let (mut lo, mut hi) = (cfg.nrh_search_lo, cfg.nrh_search_hi);
    // Ensure the bracket actually brackets.
    if trial_flips(mc, bank, victim, dummy, aggressors, hira, with_hira, lo) {
        return lo;
    }
    if !trial_flips(mc, bank, victim, dummy, aggressors, hira, with_hira, hi) {
        return hi;
    }
    while f64::from(hi - lo) > cfg.nrh_resolution * f64::from(hi) {
        let mid = lo + (hi - lo) / 2;
        if trial_flips(mc, bank, victim, dummy, aggressors, hira, with_hira, mid) {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    hi
}

/// Picks a dummy row HiRA can concurrently refresh with the victim
/// (Algorithm 2 step 1). As in the paper, candidates come from the coverage
/// knowledge: we probe isolated partners with the Algorithm-1 pair test and
/// take the first that works reliably — a partner being *isolated* is
/// necessary but not sufficient (its own analog margins must also pass).
pub fn pick_dummy(
    mc: &mut SoftMc,
    bank: BankId,
    victim: RowId,
    hira: HiraTimings,
) -> Option<RowId> {
    let geom = *mc.module().geometry();
    let subarrays = geom.rows_per_bank / geom.rows_per_subarray;
    let candidates: Vec<RowId> = (0..subarrays)
        .flat_map(|sa| (0..4).map(move |k| RowId(sa * geom.rows_per_subarray + k * 7)))
        .filter(|&c| mc.module().isolation().isolated(victim, c))
        .take(16)
        .collect();
    candidates
        .into_iter()
        .find(|&c| crate::coverage::pair_works(mc, bank, c, victim, hira))
}

/// Measures the threshold pair for one victim (Fig. 5's per-row datum).
pub fn measure_victim(
    mc: &mut SoftMc,
    bank: BankId,
    victim: RowId,
    cfg: &CharacterizeConfig,
) -> Option<NrhMeasurement> {
    let aggressors = aggressors_via_mapping(mc, victim);
    if aggressors.len() != 2 {
        return None; // edge rows: skip, as the paper implicitly does
    }
    let dummy = pick_dummy(mc, bank, victim, cfg.hira)?;
    let without_hira = search_threshold(mc, bank, victim, dummy, &aggressors, cfg.hira, false, cfg);
    let with_hira = search_threshold(mc, bank, victim, dummy, &aggressors, cfg.hira, true, cfg);
    Some(NrhMeasurement {
        victim,
        without_hira,
        with_hira,
    })
}

/// `n` victim rows spread evenly over the tested regions — the one victim
/// selection every threshold study (and the figure binaries) uses.
pub fn victim_spread(geom: &ChipGeometry, rows_per_region: u32, n: usize) -> Vec<RowId> {
    let tested = geom.tested_rows(rows_per_region);
    let step = (tested.len() / n.max(1)).max(1);
    tested.iter().copied().step_by(step).take(n).collect()
}

/// Measures `cfg.nrh_victims` victims spread over the tested rows.
pub fn measure_many(
    mc: &mut SoftMc,
    bank: BankId,
    cfg: &CharacterizeConfig,
) -> Vec<NrhMeasurement> {
    let victims = victim_spread(mc.module().geometry(), cfg.rows_per_region, cfg.nrh_victims);
    victims
        .into_iter()
        .filter_map(|v| measure_victim(mc, bank, v, cfg))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hira_dram::ModuleSpec;

    #[test]
    fn hira_roughly_doubles_the_threshold() {
        let mut mc = SoftMc::new(ModuleSpec::sk_hynix_4gb(0x21));
        let cfg = CharacterizeConfig::fast();
        let m = measure_victim(&mut mc, BankId(0), RowId(700), &cfg).expect("measurable victim");
        let norm = m.normalized();
        assert!(
            (1.4..=2.7).contains(&norm),
            "normalized threshold {norm} outside the Fig. 5b envelope ({m:?})"
        );
    }

    #[test]
    fn absolute_threshold_is_in_fig5a_range() {
        let mut mc = SoftMc::new(ModuleSpec::sk_hynix_4gb(0x22));
        let cfg = CharacterizeConfig::fast();
        let m = measure_victim(&mut mc, BankId(0), RowId(1500), &cfg).unwrap();
        assert!(
            (8_000..=130_000).contains(&m.without_hira),
            "threshold {} outside Fig. 5a support",
            m.without_hira
        );
    }

    #[test]
    fn hira_inert_module_shows_no_threshold_increase() {
        // §4.3's disambiguation: on Micron/Samsung parts the second ACT is
        // dropped, so the "with HiRA" threshold matches the baseline.
        let mut mc = SoftMc::new(ModuleSpec::micron_4gb(0x23));
        let cfg = CharacterizeConfig::fast();
        let m = measure_victim(&mut mc, BankId(0), RowId(900), &cfg).unwrap();
        let norm = m.normalized();
        assert!(
            norm < 1.15,
            "HiRA-inert module showed normalized NRH {norm}"
        );
    }

    #[test]
    fn dummy_row_is_isolated_from_victim_and_pair_works() {
        let mut mc = SoftMc::new(ModuleSpec::sk_hynix_4gb(0x24));
        let victim = RowId(300);
        let dummy = pick_dummy(&mut mc, BankId(0), victim, HiraTimings::nominal()).unwrap();
        assert!(mc.module().isolation().isolated(victim, dummy));
        assert!(crate::coverage::pair_works(
            &mut mc,
            BankId(0),
            dummy,
            victim,
            HiraTimings::nominal()
        ));
    }
}
