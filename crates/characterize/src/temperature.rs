//! Temperature sensitivity study (extension).
//!
//! The paper's rig clamps chips at a controlled temperature (§4.1) but only
//! reports room-temperature results. Prior work the paper builds on (ref
//! \[129\])
//! shows RowHammer thresholds fall as temperature rises, while HiRA's
//! analog timing windows are design properties. This experiment sweeps the
//! heater setpoint and verifies two things on the model:
//!
//! 1. the measured RowHammer threshold decreases with temperature (so a
//!    HiRA-based preventive-refresh deployment must configure `p_th` for
//!    the worst-case operating temperature), and
//! 2. the *normalized* threshold (with/without HiRA) stays ≈ 1.9× across
//!    temperature — HiRA's second activation works the same hot or cold.

use crate::config::CharacterizeConfig;
use crate::stats::BoxStats;
use crate::verify;
use hira_dram::addr::BankId;
use hira_softmc::SoftMc;

/// One temperature point of the sweep.
#[derive(Debug, Clone)]
pub struct TemperaturePoint {
    /// Heater setpoint in °C.
    pub temp_c: f64,
    /// Absolute thresholds measured without HiRA.
    pub absolute: BoxStats,
    /// Normalized thresholds (with / without HiRA).
    pub normalized: BoxStats,
}

/// Sweeps the heater setpoint and measures thresholds at each temperature.
pub fn sweep(
    mc: &mut SoftMc,
    bank: BankId,
    temps_c: &[f64],
    cfg: &CharacterizeConfig,
) -> Vec<TemperaturePoint> {
    let victims =
        verify::victim_spread(mc.module().geometry(), cfg.rows_per_region, cfg.nrh_victims);

    temps_c
        .iter()
        .map(|&t| {
            mc.set_temperature(t);
            let ms: Vec<_> = victims
                .iter()
                .filter_map(|&v| verify::measure_victim(mc, bank, v, cfg))
                .collect();
            let abs: Vec<f64> = ms.iter().map(|m| f64::from(m.without_hira)).collect();
            let norm: Vec<f64> = ms.iter().map(verify::NrhMeasurement::normalized).collect();
            TemperaturePoint {
                temp_c: t,
                absolute: BoxStats::from_samples(&abs),
                normalized: BoxStats::from_samples(&norm),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hira_dram::ModuleSpec;

    #[test]
    fn thresholds_fall_with_temperature_but_hira_ratio_holds() {
        let mut mc = SoftMc::new(ModuleSpec::sk_hynix_4gb(0x71));
        let cfg = CharacterizeConfig {
            nrh_victims: 6,
            ..CharacterizeConfig::fast()
        };
        let pts = sweep(&mut mc, BankId(0), &[45.0, 85.0], &cfg);
        assert_eq!(pts.len(), 2);
        assert!(
            pts[1].absolute.mean < pts[0].absolute.mean,
            "hotter chip should be more vulnerable: {} vs {}",
            pts[1].absolute.mean,
            pts[0].absolute.mean
        );
        for p in &pts {
            assert!(
                (1.6..=2.2).contains(&p.normalized.mean),
                "normalized ratio at {} °C: {}",
                p.temp_c,
                p.normalized.mean
            );
        }
    }
}
