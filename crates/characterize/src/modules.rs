//! End-to-end per-module characterization (Table 1 / Table 4).

use crate::config::CharacterizeConfig;
use crate::coverage;
use crate::stats::BoxStats;
use crate::verify;
use hira_dram::addr::BankId;
use hira_dram::ModuleSpec;
use hira_softmc::SoftMc;

/// One row of Table 4: coverage and normalized-threshold statistics for a
/// module, plus the absolute thresholds behind Fig. 5a.
#[derive(Debug, Clone)]
pub struct ModuleCharacterization {
    /// Module label ("A0" … "C2").
    pub label: String,
    /// DIMM vendor string.
    pub dimm_vendor: String,
    /// Chip capacity in Gb.
    pub chip_gbit: f64,
    /// Die revision.
    pub die_rev: char,
    /// Manufacturing date code `(week, year)`.
    pub date_code: (u8, u16),
    /// HiRA coverage distribution across tested rows (min/avg/max in Table 4).
    pub coverage: BoxStats,
    /// Normalized RowHammer threshold distribution (Table 4).
    pub norm_nrh: BoxStats,
    /// Absolute thresholds measured without HiRA (Fig. 5a, "without").
    pub abs_nrh_without: Vec<f64>,
    /// Absolute thresholds measured with HiRA (Fig. 5a, "with").
    pub abs_nrh_with: Vec<f64>,
    /// Whether the module supports HiRA (§4.3 verdict: the second activation
    /// is demonstrably not ignored).
    pub hira_capable: bool,
}

/// Characterizes one module on bank 0 (the paper's default bank).
pub fn characterize_module(spec: ModuleSpec, cfg: &CharacterizeConfig) -> ModuleCharacterization {
    let label = spec.label.clone();
    let dimm_vendor = spec.dimm_vendor.clone();
    let chip_gbit = spec.geometry.chip_gbit();
    let die_rev = spec.die_rev;
    let date_code = spec.date_code;

    let mut mc = SoftMc::new(spec);
    let bank = BankId(0);

    let cov = coverage::measure(&mut mc, bank, cfg);
    let nrh = verify::measure_many(&mut mc, bank, cfg);
    let norms: Vec<f64> = nrh.iter().map(verify::NrhMeasurement::normalized).collect();
    let abs_without: Vec<f64> = nrh.iter().map(|m| f64::from(m.without_hira)).collect();
    let abs_with: Vec<f64> = nrh.iter().map(|m| f64::from(m.with_hira)).collect();
    let norm_stats = BoxStats::from_samples(&norms);

    ModuleCharacterization {
        label,
        dimm_vendor,
        chip_gbit,
        die_rev,
        date_code,
        coverage: cov.stats(),
        norm_nrh: norm_stats,
        abs_nrh_without: abs_without,
        abs_nrh_with: abs_with,
        // The §4.3 criterion: a real second activation raises the measured
        // threshold well above the baseline for the vast majority of rows.
        hira_capable: norm_stats.median > 1.5,
    }
}

/// Characterizes all seven Table 1 modules.
pub fn characterize_table1(cfg: &CharacterizeConfig) -> Vec<ModuleCharacterization> {
    ModuleSpec::table1_modules()
        .into_iter()
        .map(|spec| characterize_module(spec, cfg))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg() -> CharacterizeConfig {
        CharacterizeConfig {
            rows_per_region: 24,
            row_a_stride: 3,
            row_b_stride: 2,
            nrh_victims: 8,
            ..CharacterizeConfig::fast()
        }
    }

    #[test]
    fn c0_lands_in_its_table4_band() {
        let m = characterize_module(ModuleSpec::c0(), &quick_cfg());
        // At this scale the structural exclusion factor is 2/3, so the
        // Table 4 average of 35.3 % maps to ≈ 0.447 × 2/3 ≈ 0.30.
        assert!(
            (0.22..=0.38).contains(&m.coverage.mean),
            "C0 coverage mean {}",
            m.coverage.mean
        );
        assert!(
            (1.6..=2.2).contains(&m.norm_nrh.mean),
            "C0 normalized NRH mean {}",
            m.norm_nrh.mean
        );
        assert!(m.hira_capable);
    }

    #[test]
    fn a0_coverage_sits_below_c1_coverage() {
        // Table 4 ordering: A0 has the lowest coverage (25.0 %), C1 the
        // highest (38.4 %).
        let a0 = characterize_module(ModuleSpec::a0(), &quick_cfg());
        let c1 = characterize_module(ModuleSpec::c1(), &quick_cfg());
        assert!(
            a0.coverage.mean + 0.04 < c1.coverage.mean,
            "A0 {} vs C1 {}",
            a0.coverage.mean,
            c1.coverage.mean
        );
    }

    #[test]
    fn micron_module_is_flagged_hira_incapable() {
        let m = characterize_module(ModuleSpec::micron_4gb(5), &quick_cfg());
        assert!(
            !m.hira_capable,
            "normalized NRH median {}",
            m.norm_nrh.median
        );
    }
}
