//! §4.4: variation across DRAM banks.
//!
//! Two experiments: (1) the set of row pairs HiRA can concurrently activate
//! is identical across all 16 banks (§4.4.1, a design-induced property), and
//! (2) HiRA's second row activation works in every bank, with the normalized
//! RowHammer threshold per bank plotted in Fig. 6.

use crate::config::CharacterizeConfig;
use crate::coverage::pair_works;
use crate::stats::BoxStats;
use crate::verify;
use hira_dram::addr::BankId;
use hira_softmc::SoftMc;

/// Result of the §4.4.1 invariance check.
#[derive(Debug, Clone)]
pub struct PairInvariance {
    /// Number of `(RowA, RowB)` pairs probed per bank.
    pub pairs_probed: usize,
    /// Banks whose pass/fail pattern differed from bank 0 (empty = invariant).
    pub divergent_banks: Vec<BankId>,
}

/// Probes a sample of row pairs in every bank and checks that the set of
/// working pairs is identical across banks.
pub fn pair_invariance(
    mc: &mut SoftMc,
    cfg: &CharacterizeConfig,
    sample_pairs: usize,
) -> PairInvariance {
    let geom = *mc.module().geometry();
    let banks = geom.banks;
    let tested = geom.tested_rows(cfg.rows_per_region);
    // A deterministic spread of pairs over the tested rows.
    let mut pairs = Vec::with_capacity(sample_pairs);
    let n = tested.len();
    for k in 0..sample_pairs {
        let a = tested[(k * 7919) % n];
        let b = tested[(k * 104_729 + n / 2) % n];
        if a != b {
            pairs.push((a, b));
        }
    }

    let reference: Vec<bool> = pairs
        .iter()
        .map(|&(a, b)| pair_works(mc, BankId(0), a, b, cfg.hira))
        .collect();

    let mut divergent = Vec::new();
    for bank_idx in 1..banks {
        let bank = BankId(bank_idx);
        let same = pairs
            .iter()
            .zip(&reference)
            .all(|(&(a, b), &expect)| pair_works(mc, bank, a, b, cfg.hira) == expect);
        if !same {
            divergent.push(bank);
        }
    }
    PairInvariance {
        pairs_probed: pairs.len(),
        divergent_banks: divergent,
    }
}

/// Per-bank normalized RowHammer threshold distribution (one Fig. 6 box).
#[derive(Debug, Clone)]
pub struct BankNrh {
    /// The bank measured.
    pub bank: BankId,
    /// Distribution of normalized thresholds across victims in this bank.
    pub normalized: BoxStats,
}

/// Runs the Algorithm 2 verification in every bank (Fig. 6).
pub fn per_bank_normalized_nrh(
    mc: &mut SoftMc,
    cfg: &CharacterizeConfig,
    victims_per_bank: usize,
) -> Vec<BankNrh> {
    let geom = *mc.module().geometry();
    let victims = verify::victim_spread(&geom, cfg.rows_per_region, victims_per_bank);

    (0..geom.banks)
        .map(|bank_idx| {
            let bank = BankId(bank_idx);
            let norms: Vec<f64> = victims
                .iter()
                .filter_map(|&v| verify::measure_victim(mc, bank, v, cfg))
                .map(|m| m.normalized())
                .collect();
            BankNrh {
                bank,
                normalized: BoxStats::from_samples(&norms),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hira_dram::ModuleSpec;

    #[test]
    fn working_pairs_are_identical_across_banks() {
        let mut mc = SoftMc::new(ModuleSpec::sk_hynix_4gb(0x31));
        let cfg = CharacterizeConfig {
            rows_per_region: 32,
            ..CharacterizeConfig::fast()
        };
        let inv = pair_invariance(&mut mc, &cfg, 12);
        assert!(inv.pairs_probed >= 10);
        assert!(
            inv.divergent_banks.is_empty(),
            "divergent banks: {:?}",
            inv.divergent_banks
        );
    }

    #[test]
    fn every_bank_shows_a_real_second_activation() {
        let mut mc = SoftMc::new(ModuleSpec::sk_hynix_4gb(0x32));
        let cfg = CharacterizeConfig {
            nrh_victims: 3,
            ..CharacterizeConfig::fast()
        };
        let per_bank = per_bank_normalized_nrh(&mut mc, &cfg, 3);
        assert_eq!(per_bank.len(), 16);
        for b in &per_bank {
            // Fig. 6: normalized threshold > 1.56× in every bank.
            assert!(
                b.normalized.min > 1.3,
                "bank {} normalized min {}",
                b.bank,
                b.normalized.min
            );
        }
    }
}
