//! Plain-text rendering of tables and figure series for the bench binaries.

use crate::coverage::CoverageGridPoint;
use crate::modules::ModuleCharacterization;
use crate::stats::BoxStats;
use std::fmt::Write as _;

/// Renders Table 1/Table 4 (module summary with coverage and normalized NRH).
pub fn render_table1(rows: &[ModuleCharacterization]) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "{:<6} {:<10} {:>5} {:>4} {:>8}   {:>24}   {:>24}   {:<5}",
        "Module",
        "Vendor",
        "Cap",
        "Die",
        "Date",
        "HiRA Cov (min/avg/max)",
        "Norm NRH (min/avg/max)",
        "HiRA?"
    );
    let _ = writeln!(s, "{}", "-".repeat(104));
    for m in rows {
        let _ = writeln!(
            s,
            "{:<6} {:<10} {:>4}Gb {:>4} {:>5}-{:<2}   {:>6.1}% /{:>5.1}% /{:>5.1}%   {:>6.2} /{:>6.2} /{:>6.2}   {:<5}",
            m.label,
            m.dimm_vendor,
            m.chip_gbit,
            m.die_rev,
            m.date_code.0,
            m.date_code.1 % 100,
            m.coverage.min * 100.0,
            m.coverage.mean * 100.0,
            m.coverage.max * 100.0,
            m.norm_nrh.min,
            m.norm_nrh.mean,
            m.norm_nrh.max,
            if m.hira_capable { "yes" } else { "no" },
        );
    }
    s
}

/// Renders one box-stats line (used by several figures).
pub fn render_box(label: &str, b: &BoxStats) -> String {
    format!(
        "{label}: min {:.3}  q1 {:.3}  med {:.3}  q3 {:.3}  max {:.3}  mean {:.3}  (n={})",
        b.min, b.q1, b.median, b.q3, b.max, b.mean, b.n
    )
}

/// Renders the Fig. 4 grid as a table of box summaries.
pub fn render_figure4(grid: &[CoverageGridPoint]) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "{:>5} {:>5}   {:>7} {:>7} {:>7} {:>7} {:>7}",
        "t1", "t2", "min", "q1", "median", "q3", "max"
    );
    let _ = writeln!(s, "{}", "-".repeat(56));
    for p in grid {
        let b = &p.stats;
        let _ = writeln!(
            s,
            "{:>4.1}n {:>4.1}n   {:>6.1}% {:>6.1}% {:>6.1}% {:>6.1}% {:>6.1}%",
            p.hira.t1,
            p.hira.t2,
            b.min * 100.0,
            b.q1 * 100.0,
            b.median * 100.0,
            b.q3 * 100.0,
            b.max * 100.0
        );
    }
    s
}

/// Renders a histogram as `center  fraction  bar`.
pub fn render_histogram(title: &str, series: &[(f64, f64)], scale: f64) -> String {
    let mut s = format!("{title}\n");
    for &(center, frac) in series {
        let bar = "#".repeat((frac * 200.0).round() as usize);
        let _ = writeln!(s, "{:>12.1}  {:>6.3}  {}", center / scale, frac, bar);
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::BoxStats;

    fn fake_module(label: &str) -> ModuleCharacterization {
        ModuleCharacterization {
            label: label.to_owned(),
            dimm_vendor: "Test".to_owned(),
            chip_gbit: 4.0,
            die_rev: 'F',
            date_code: (51, 2020),
            coverage: BoxStats::from_samples(&[0.25, 0.32, 0.40]),
            norm_nrh: BoxStats::from_samples(&[1.7, 1.9, 2.2]),
            abs_nrh_without: vec![27_000.0],
            abs_nrh_with: vec![51_000.0],
            hira_capable: true,
        }
    }

    #[test]
    fn table1_contains_all_modules() {
        let out = render_table1(&[fake_module("A0"), fake_module("C2")]);
        assert!(out.contains("A0") && out.contains("C2"));
        assert!(out.contains("yes"));
    }

    #[test]
    fn box_line_has_all_fields() {
        let b = BoxStats::from_samples(&[1.0, 2.0, 3.0]);
        let line = render_box("x", &b);
        for key in ["min", "q1", "med", "q3", "max", "mean"] {
            assert!(line.contains(key), "missing {key}: {line}");
        }
    }

    #[test]
    fn histogram_renders_bars() {
        let out = render_histogram("h", &[(10_000.0, 0.5), (20_000.0, 0.5)], 1_000.0);
        assert!(out.contains('#'));
        assert!(out.lines().count() >= 3);
    }
}
