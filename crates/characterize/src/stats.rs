//! Distribution summaries for the characterization figures.

/// A box-and-whiskers summary (§4.2 footnote 6): min / Q1 / median / Q3 /
/// max, plus the mean for the tables.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoxStats {
    /// Smallest observation.
    pub min: f64,
    /// First quartile (median of the lower half).
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile (median of the upper half).
    pub q3: f64,
    /// Largest observation.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Number of observations.
    pub n: usize,
}

impl BoxStats {
    /// Summarizes a sample.
    ///
    /// # Panics
    ///
    /// Panics if the sample is empty.
    pub fn from_samples(samples: &[f64]) -> Self {
        assert!(!samples.is_empty(), "cannot summarize an empty sample");
        let mut xs = samples.to_vec();
        xs.sort_by(|a, b| a.total_cmp(b));
        let n = xs.len();
        let median = median_of(&xs);
        // Quartiles as the medians of the ordered halves (footnote 6).
        let half = n / 2;
        let (q1, q3) = if n == 1 {
            (xs[0], xs[0])
        } else {
            (median_of(&xs[..half]), median_of(&xs[n - half..]))
        };
        BoxStats {
            min: xs[0],
            q1,
            median,
            q3,
            max: xs[n - 1],
            mean: xs.iter().sum::<f64>() / n as f64,
            n,
        }
    }

    /// Interquartile range (the box height).
    pub fn iqr(&self) -> f64 {
        self.q3 - self.q1
    }
}

fn median_of(sorted: &[f64]) -> f64 {
    let n = sorted.len();
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        0.5 * (sorted[n / 2 - 1] + sorted[n / 2])
    }
}

/// A fixed-width histogram over `[lo, hi)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// An empty histogram with `bins` equal-width bins spanning `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0` or `hi <= lo`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "need at least one bin");
        assert!(hi > lo, "hi must exceed lo");
        Histogram {
            lo,
            hi,
            counts: vec![0; bins],
            total: 0,
        }
    }

    /// Adds one observation (out-of-range values clamp to the edge bins).
    pub fn add(&mut self, x: f64) {
        let bins = self.counts.len();
        let idx = (((x - self.lo) / (self.hi - self.lo)) * bins as f64)
            .floor()
            .clamp(0.0, (bins - 1) as f64) as usize;
        self.counts[idx] += 1;
        self.total += 1;
    }

    /// Adds every observation of a sample.
    pub fn extend(&mut self, xs: &[f64]) {
        for &x in xs {
            self.add(x);
        }
    }

    /// `(bin_center, fraction_of_total)` pairs — the normalized histogram the
    /// paper plots in Fig. 5.
    pub fn normalized(&self) -> Vec<(f64, f64)> {
        let bins = self.counts.len();
        let width = (self.hi - self.lo) / bins as f64;
        self.counts
            .iter()
            .enumerate()
            .map(|(i, &c)| {
                let center = self.lo + (i as f64 + 0.5) * width;
                let frac = if self.total == 0 {
                    0.0
                } else {
                    c as f64 / self.total as f64
                };
                (center, frac)
            })
            .collect()
    }

    /// Total number of observations.
    pub fn total(&self) -> u64 {
        self.total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn box_stats_of_known_sample() {
        let s = BoxStats::from_samples(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 8.0);
        assert_eq!(s.median, 4.5);
        assert_eq!(s.q1, 2.5);
        assert_eq!(s.q3, 6.5);
        assert_eq!(s.mean, 4.5);
        assert_eq!(s.iqr(), 4.0);
    }

    #[test]
    fn box_stats_single_value() {
        let s = BoxStats::from_samples(&[3.5]);
        assert_eq!(s.min, 3.5);
        assert_eq!(s.q1, 3.5);
        assert_eq!(s.q3, 3.5);
        assert_eq!(s.n, 1);
    }

    #[test]
    fn box_stats_is_order_invariant() {
        let a = BoxStats::from_samples(&[3.0, 1.0, 2.0]);
        let b = BoxStats::from_samples(&[1.0, 2.0, 3.0]);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn box_stats_rejects_empty() {
        BoxStats::from_samples(&[]);
    }

    #[test]
    fn histogram_bins_and_normalizes() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        h.extend(&[0.5, 1.5, 2.5, 2.6, 9.9, -3.0, 42.0]);
        let norm = h.normalized();
        assert_eq!(norm.len(), 5);
        assert_eq!(h.total(), 7);
        // Bin 0 holds 0.5, 1.5 and the clamped -3.0.
        assert!((norm[0].1 - 3.0 / 7.0).abs() < 1e-12);
        // Bin centers are mid-bin.
        assert!((norm[0].0 - 1.0).abs() < 1e-12);
        let total_frac: f64 = norm.iter().map(|(_, f)| f).sum();
        assert!((total_frac - 1.0).abs() < 1e-12);
    }
}
