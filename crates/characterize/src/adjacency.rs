//! Reverse engineering of the DRAM-internal row mapping (§4 footnote 8).
//!
//! To hammer rows that are *physically* adjacent to a victim, the paper
//! reconstructs the internal logical→physical mapping with single-sided
//! RowHammer: hammer one candidate row far past any plausible threshold and
//! see whether the victim flips. Only physical neighbours can flip it.

use hira_dram::addr::{BankId, RowId};
use hira_softmc::patterns::DataPattern;
use hira_softmc::program::Program;
use hira_softmc::SoftMc;

/// Single-sided hammer count used for discovery (far above any threshold).
const DISCOVERY_HAMMERS: u32 = 400_000;

/// Finds the logical addresses of the victim's physical neighbours by
/// single-sided hammering of every candidate in a `±window` logical window.
/// The internal remapping is block-local (≤ 512 rows on the modelled parts),
/// so `window = 512` always finds both neighbours.
///
/// Returns the aggressor rows in ascending logical order (1 or 2 rows; edge
/// rows of the bank have a single neighbour).
pub fn reverse_engineer_aggressors(
    mc: &mut SoftMc,
    bank: BankId,
    victim: RowId,
    window: u32,
) -> Vec<RowId> {
    let rows_per_bank = mc.module().geometry().rows_per_bank;
    let lo = victim.0.saturating_sub(window);
    let hi = (victim.0 + window).min(rows_per_bank - 1);
    let mut aggressors = Vec::new();
    for cand in lo..=hi {
        if cand == victim.0 {
            continue;
        }
        let candidate = RowId(cand);
        // Both polarities so the flip direction cannot hide the disturbance.
        let mut flipped = false;
        for pattern in [DataPattern::Ones, DataPattern::Zeros] {
            let mut p = Program::new();
            p.write_row(bank, victim, pattern)
                .write_row(bank, candidate, pattern.inverse())
                // Single-sided: hammering the candidate against itself issues
                // 2 activations per loop iteration.
                .hammer_pair(bank, candidate, candidate, DISCOVERY_HAMMERS / 2)
                .read_row(bank, victim);
            let r = mc.run(&p);
            if r.flips_of(bank, victim, pattern).expect("victim read back") > 0 {
                flipped = true;
                break;
            }
        }
        if flipped {
            aggressors.push(candidate);
        }
    }
    aggressors
}

/// The fast path: asks the module spec for the mapping directly. Used by the
/// bulk experiments once `reverse_engineer_aggressors` has validated it.
pub fn aggressors_via_mapping(mc: &SoftMc, victim: RowId) -> Vec<RowId> {
    let rows_per_bank = mc.module().geometry().rows_per_bank;
    let mut a = mc
        .module()
        .spec()
        .mapping
        .logical_aggressors(victim, rows_per_bank);
    a.sort();
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use hira_dram::ModuleSpec;

    #[test]
    fn discovery_matches_the_module_mapping() {
        let mut mc = SoftMc::new(ModuleSpec::sk_hynix_4gb(0x77));
        let victim = RowId(1_024 + 17);
        let expected = aggressors_via_mapping(&mc, victim);
        let found = reverse_engineer_aggressors(&mut mc, BankId(0), victim, 512);
        assert_eq!(
            found, expected,
            "single-sided discovery disagrees with mapping"
        );
        assert_eq!(found.len(), 2);
    }

    #[test]
    fn edge_row_has_single_neighbor() {
        let mc = SoftMc::new(ModuleSpec::sk_hynix_4gb(0x78));
        // Physical row 0's logical address:
        let log0 = mc
            .module()
            .spec()
            .mapping
            .to_logical(hira_dram::addr::PhysRowId(0));
        let a = aggressors_via_mapping(&mc, log0);
        assert_eq!(a.len(), 1);
    }
}
