//! # hira-characterize — §4's real-chip experiments, in software
//!
//! Runs the paper's characterization methodology verbatim against the
//! behavioural chip model:
//!
//! * [`coverage`] — **Algorithm 1**: HiRA coverage of a row = the fraction of
//!   other rows in the bank that can be concurrently activated with it
//!   without bit flips, swept over the `t1 × t2` grid (Fig. 4, Table 1/4),
//! * [`verify`] — **Algorithm 2**: proves the second row activation is real
//!   by measuring the RowHammer threshold of a victim with and without a
//!   mid-attack HiRA refresh (Fig. 5, Table 4),
//! * [`banks`] — §4.4: coverage-pair invariance and normalized-threshold
//!   variation across all 16 banks (Fig. 6),
//! * [`modules`] — end-to-end per-module characterization (Table 1/Table 4),
//! * [`adjacency`] — single-sided-RowHammer reverse engineering of the
//!   DRAM-internal row mapping (§4 footnote 8),
//! * [`temperature`] — an extension study: RowHammer thresholds vs the
//!   heater setpoint, and HiRA's temperature-invariance,
//! * [`stats`] — box-and-whisker summaries and histograms used by every
//!   figure,
//! * [`report`] — plain-text table/figure rendering for the bench binaries.

pub mod adjacency;
pub mod banks;
pub mod config;
pub mod coverage;
pub mod modules;
pub mod report;
pub mod stats;
pub mod temperature;
pub mod verify;

pub use config::CharacterizeConfig;
pub use coverage::{CoverageGridPoint, CoverageResult};
pub use modules::ModuleCharacterization;
pub use stats::BoxStats;
pub use verify::NrhMeasurement;
