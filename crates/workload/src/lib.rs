//! # hira-workload — the open workload frontend
//!
//! The paper's evaluation (§7) is driven entirely by 8-core multiprogrammed
//! memory behaviour, and refresh-policy conclusions shift materially with
//! access pattern, locality and arrival model. This crate does for demand
//! traffic what `hira_sim::policy` does for refresh: it turns the closed,
//! hard-coded SPEC-like roster into an open interface. A workload is any
//! type implementing [`Workload`], selected through a [`WorkloadHandle`]
//! and (for sweeps and CLI axes) the string-keyed [`WorkloadRegistry`].
//!
//! Three families ship out of the box:
//!
//! * [`spec`](mod@spec) — the SPEC CPU2006-like synthetic roster and its
//!   multiprogrammed [`mix`]es (§7's 125-mix suite), ported onto the trait
//!   bit-identically to the legacy generator,
//! * [`generators`] — parametric access-pattern generators: pure streams,
//!   uniform random, pointer chase, hotspot and zipfian locality,
//!   read/write-ratio sweeps and an open-loop fixed-arrival mode,
//! * [`trace`] — a line-oriented frontend replaying ramulator2-style
//!   `.trace` files (`<bubble_count> <addr> [W]` records), with a writer so
//!   any generator can be dumped and replayed bit-identically.
//!
//! ## The per-core contract
//!
//! A [`WorkloadHandle`] is a cloneable, name-identified factory. The system
//! builds **one instance per core** from a [`WorkloadEnv`] carrying the core
//! index, core count and the configuration seed; instances derive their
//! randomness from deterministic [`hira_dram::rng::Stream`]s keyed by those
//! coordinates, so a workload's traffic is a pure function of *what* it is
//! and *where* it runs — never of scheduling or thread count. Each core owns
//! the 1 GiB address window starting at [`WorkloadEnv::base_addr`], keeping
//! multiprogrammed address spaces disjoint.
//!
//! ## Adding a workload
//!
//! Implement the trait, wrap a factory in a handle, register it:
//!
//! ```rust
//! use hira_workload::{
//!     Family, Op, Workload, WorkloadEnv, WorkloadHandle, WorkloadProfile, WorkloadRegistry,
//! };
//!
//! /// Touches one line per kilo-instruction, forever. Useless — but a
//! /// complete workload.
//! #[derive(Debug)]
//! struct Metronome {
//!     line: u64,
//!     pending: bool,
//! }
//!
//! impl Workload for Metronome {
//!     fn name(&self) -> &str {
//!         "metronome"
//!     }
//!     fn next_access(&mut self) -> Op {
//!         if !self.pending {
//!             self.pending = true;
//!             return Op::Compute(999);
//!         }
//!         self.pending = false;
//!         self.line += 1;
//!         Op::Load(self.line * 64)
//!     }
//!     fn profile(&self) -> WorkloadProfile {
//!         WorkloadProfile {
//!             family: Family::Generator,
//!             summary: "one load per kilo-instruction".into(),
//!             mem_per_kinst: 1.0,
//!             store_frac: 0.0,
//!             footprint_lines: u64::MAX,
//!         }
//!     }
//! }
//!
//! let mut registry = WorkloadRegistry::standard();
//! registry.register(WorkloadHandle::new(
//!     "metronome",
//!     Family::Generator,
//!     "one load per kilo-instruction",
//!     |env| {
//!         Box::new(Metronome {
//!             line: env.base_addr() / 64,
//!             pending: false,
//!         })
//!     },
//! ));
//! let mut wl = registry.lookup("metronome").unwrap().build(&WorkloadEnv {
//!     core: 0,
//!     cores: 1,
//!     seed: 7,
//! });
//! assert!(matches!(wl.next_access(), Op::Compute(999)));
//! ```

pub mod generators;
pub mod registry;
pub mod spec;
pub mod trace;

pub use generators::{chase, hotspot, open_loop, random, rw, stream, zipf, GeneratorSpec};
pub use registry::{workload, WorkloadRegistry};
pub use spec::{benchmark, mix, mix_with_seed, roster, spec, Benchmark, BENCHMARKS};
pub use trace::{trace_file, ParseError, Trace, TraceRecord};

use hira_dram::rng::Stream;
use std::fmt;
use std::sync::Arc;

/// The closed-loop arrival draw the roster and the parametric generators
/// share: a geometric compute gap whose mean matches `mem_per_kinst`
/// (gap then access, so the inter-arrival expectation is exactly
/// `1000 / mem_per_kinst`). One definition keeps the two families'
/// arrival models provably identical.
pub(crate) fn geometric_gap(rng: &mut Stream, mem_per_kinst: f64) -> u32 {
    let per_inst = mem_per_kinst / 1000.0;
    let u = rng.next_f64().max(1e-12);
    ((u.ln() / (1.0 - per_inst.min(0.99)).ln()).floor() as u32).min(60_000)
}

/// One instruction-stream event a workload frontend emits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// `n` non-memory instructions, delivered as a single **run-length
    /// bubble** rather than one event per instruction. This is what lets
    /// the event-driven simulation kernel batch a whole compute bubble
    /// arithmetically (the core advances `n / width` cycles in O(1))
    /// instead of ticking through it — see the trait-level contract:
    /// frontends never emit two `Compute` events in a row.
    Compute(u32),
    /// A load of the 64 B line at this byte address.
    Load(u64),
    /// A store to the 64 B line at this byte address.
    Store(u64),
}

/// Bytes of address space each core owns (1 GiB), keeping multiprogrammed
/// address spaces disjoint.
pub const CORE_WINDOW_BYTES: u64 = 1 << 30;

/// Which of the shipped families a workload belongs to (registry listings).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Family {
    /// SPEC-like synthetic roster benchmarks and their mixes.
    Synthetic,
    /// Parametric access-pattern generators.
    Generator,
    /// Replay of an on-disk (or embedded) trace file.
    Trace,
}

impl fmt::Display for Family {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Family::Synthetic => "synthetic",
            Family::Generator => "generator",
            Family::Trace => "trace",
        })
    }
}

/// Self-describing workload metadata: what a frontend instance *expects* its
/// first-order memory behaviour to be. Registry listings (`--list`) and
/// sanity tests read this; the simulator never does.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadProfile {
    /// The family the workload belongs to.
    pub family: Family,
    /// One-line human description.
    pub summary: String,
    /// Expected memory operations (LLC-level accesses) per kilo-instruction.
    pub mem_per_kinst: f64,
    /// Expected fraction of memory operations that are stores.
    pub store_frac: f64,
    /// Footprint in 64 B lines (`u64::MAX` when unbounded).
    pub footprint_lines: u64,
}

/// Construction context handed to a workload factory: which core the
/// instance will drive, how many cores the system has, and the
/// configuration seed all per-core [`hira_dram::rng::Stream`]s derive from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkloadEnv {
    /// Core index the instance drives.
    pub core: usize,
    /// Cores in the system (mix composition, phase staggering).
    pub cores: usize,
    /// Deterministic configuration seed.
    pub seed: u64,
}

impl WorkloadEnv {
    /// Byte offset isolating this core's 1 GiB address window.
    pub fn base_addr(&self) -> u64 {
        self.core as u64 * CORE_WINDOW_BYTES
    }
}

/// A per-core demand-traffic frontend: the open replacement for the
/// hard-coded SPEC-like generator the simulator used to carry.
///
/// ## Contract
///
/// * [`next_access`](Self::next_access) is called whenever the core can
///   dispatch and must always return an event; frontends are infinite
///   (generators never exhaust, traces wrap around). Memory events are
///   separated by at most one [`Op::Compute`] gap — never emit two gaps in
///   a row. Two things depend on this run-length delivery: captured traces
///   replay bit-identically, and the event-driven simulation kernel can
///   treat each bubble as one closed-form skip (a gap split across several
///   `Compute` events would force it back to per-cycle ticking at every
///   seam).
/// * All randomness must come from [`hira_dram::rng::Stream`]s keyed by the
///   [`WorkloadEnv`] coordinates: two instances built from equal
///   environments must emit identical event sequences.
/// * [`on_roi_begin`](Self::on_roi_begin) /
///   [`on_roi_end`](Self::on_roi_end) bracket the measured region: the
///   system calls them when the core finishes warmup and when it retires its
///   instruction budget. Phase-aware workloads (e.g. a frontend that
///   streams through warmup and randomizes in the measured region — see
///   `examples/custom_workload.rs`) hook these; most frontends ignore
///   them, and the shipped families stay phase-free so captures replay
///   bit-identically through whole simulations.
pub trait Workload: fmt::Debug + Send {
    /// Instance name. For multiprogrammed mixes this is the *per-core*
    /// benchmark name (e.g. `mcf`), which is what weighted-speedup
    /// denominators are keyed by; for uniform workloads it equals the
    /// handle name.
    fn name(&self) -> &str;

    /// The next instruction-stream event.
    fn next_access(&mut self) -> Op;

    /// The core finished warmup and entered the region of interest.
    fn on_roi_begin(&mut self) {}

    /// The core retired its measured instruction budget.
    fn on_roi_end(&mut self) {}

    /// Self-describing metadata.
    fn profile(&self) -> WorkloadProfile;
}

/// Factory signature behind a [`WorkloadHandle`].
pub type WorkloadFactory = dyn Fn(&WorkloadEnv) -> Box<dyn Workload> + Send + Sync;

/// A cloneable, comparable *selection* of a workload: the registry key plus
/// the factory that builds per-core instances. This is what
/// `SystemConfig` stores and what sweeps pass around — equality and hashing
/// go by name, so two configs selecting the same registered workload
/// compare (and bucket) equal. Parameterized workloads must encode their
/// parameters in the name (`zipf80`, `mix3`, `trace:foo.trace`): the name
/// is the identity.
#[derive(Clone)]
pub struct WorkloadHandle {
    name: Arc<str>,
    family: Family,
    summary: Arc<str>,
    factory: Arc<WorkloadFactory>,
}

impl WorkloadHandle {
    /// Wraps a factory under a registry name with a one-line summary.
    pub fn new(
        name: impl Into<String>,
        family: Family,
        summary: impl Into<String>,
        factory: impl Fn(&WorkloadEnv) -> Box<dyn Workload> + Send + Sync + 'static,
    ) -> Self {
        WorkloadHandle {
            name: Arc::from(name.into()),
            family,
            summary: Arc::from(summary.into()),
            factory: Arc::new(factory),
        }
    }

    /// The workload's registry name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The family the workload belongs to.
    pub fn family(&self) -> Family {
        self.family
    }

    /// One-line description (registry `--list` output).
    pub fn summary(&self) -> &str {
        &self.summary
    }

    /// Builds the instance driving `env.core`.
    pub fn build(&self, env: &WorkloadEnv) -> Box<dyn Workload> {
        (self.factory)(env)
    }

    /// The per-core instance names a `cores`-core system under `seed` would
    /// run — the keys weighted-speedup denominators are cached by. Building
    /// an instance is cheap (no simulation), so this just builds and asks.
    pub fn instance_names(&self, cores: usize, seed: u64) -> Vec<String> {
        (0..cores)
            .map(|core| {
                self.build(&WorkloadEnv { core, cores, seed })
                    .name()
                    .to_owned()
            })
            .collect()
    }
}

impl fmt::Debug for WorkloadHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("WorkloadHandle").field(&self.name).finish()
    }
}

impl PartialEq for WorkloadHandle {
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name
    }
}

impl Eq for WorkloadHandle {}

impl std::hash::Hash for WorkloadHandle {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.name.hash(state);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_compare_by_name() {
        assert_eq!(spec("mcf"), spec("mcf"));
        assert_ne!(spec("mcf"), spec("lbm"));
        assert_ne!(zipf(80), zipf(99));
        assert_ne!(mix(0), mix(1));
    }

    #[test]
    fn core_windows_are_disjoint() {
        let e0 = WorkloadEnv {
            core: 0,
            cores: 8,
            seed: 1,
        };
        let e3 = WorkloadEnv {
            core: 3,
            cores: 8,
            seed: 1,
        };
        assert_eq!(e0.base_addr(), 0);
        assert_eq!(e3.base_addr(), 3 << 30);
    }

    #[test]
    fn every_registered_workload_delivers_bubbles_run_length() {
        // The contract the event kernel's compute batching rides on: a
        // compute gap arrives as ONE `Op::Compute(n)`, never split into
        // consecutive events. Checked across the whole standard registry
        // (all three families) over a long prefix of each stream.
        for handle in registry::WorkloadRegistry::standard().handles() {
            let mut wl = handle.build(&WorkloadEnv {
                core: 0,
                cores: 2,
                seed: 11,
            });
            let mut prev_was_gap = false;
            for i in 0..20_000 {
                let gap = matches!(wl.next_access(), Op::Compute(_));
                assert!(
                    !(gap && prev_was_gap),
                    "{}: consecutive Compute events at op {i}",
                    handle.name()
                );
                prev_was_gap = gap;
            }
        }
    }

    #[test]
    fn instance_names_report_per_core_identities() {
        // A uniform workload repeats its own name; a mix reports its
        // per-core roster members.
        assert_eq!(stream().instance_names(3, 7), vec!["stream"; 3]);
        let names = mix(0).instance_names(8, 7);
        assert_eq!(names.len(), 8);
        assert!(names.iter().all(|n| benchmark(n).is_some()));
    }
}
