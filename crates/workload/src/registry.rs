//! The string-keyed workload registry: the bridge between CLI/sweep axes
//! (`--workload=zipf80`) and [`WorkloadHandle`]s.

use crate::generators::{chase, hotspot, open_loop, random, rw, stream, zipf};
use crate::spec::{mix, spec_handle, BENCHMARKS};
use crate::trace::{demo_trace, trace_file};
use crate::WorkloadHandle;

/// An ordered, string-keyed collection of workloads. Order is preserved so
/// sweeps and the `workload_matrix` figure present workloads in
/// registration order, not alphabetically.
#[derive(Debug, Clone, Default)]
pub struct WorkloadRegistry {
    entries: Vec<WorkloadHandle>,
}

impl WorkloadRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        WorkloadRegistry::default()
    }

    /// The registry every binary starts from — all three families:
    ///
    /// * the first multiprogrammed mixes plus every roster benchmark
    ///   (synthetic),
    /// * the parametric generators (`stream`, `random`, `chase`,
    ///   `hotspot`, `zipf80`, `rw50`, `open25`),
    /// * the embedded `demo-trace` replay.
    pub fn standard() -> Self {
        let mut r = WorkloadRegistry::new();
        r.register(mix(0));
        r.register(mix(1));
        for h in [
            stream(),
            random(),
            chase(),
            hotspot(),
            zipf(80),
            rw(50),
            open_loop(25),
        ] {
            r.register(h);
        }
        r.register(demo_trace().into_handle("demo-trace"));
        for b in BENCHMARKS {
            r.register(spec_handle(b));
        }
        r
    }

    /// Registers (or replaces, by name) a workload.
    pub fn register(&mut self, handle: WorkloadHandle) {
        if let Some(existing) = self.entries.iter_mut().find(|h| h.name() == handle.name()) {
            *existing = handle;
        } else {
            self.entries.push(handle);
        }
    }

    /// Resolves a name. Exact registered names win; these parameterized
    /// forms resolve dynamically for any parameter value:
    ///
    /// * `mix<N>` — multiprogrammed mix `N` of the standard suite,
    /// * `zipf<N>` — zipfian with θ = N/100,
    /// * `rw<N>` — uniform-random with N % stores (N ≤ 100),
    /// * `open<N>` — open-loop at N accesses per kilo-instruction (N a
    ///   divisor of 1000, so the name states the exact simulated rate),
    /// * `trace:<path>` — replay of the trace file at `path` (`None` when
    ///   the file is missing or malformed; use [`crate::trace_file`]
    ///   directly for the typed [`crate::ParseError`]).
    pub fn lookup(&self, name: &str) -> Option<WorkloadHandle> {
        if let Some(h) = self.entries.iter().find(|h| h.name() == name) {
            return Some(h.clone());
        }
        if let Some(n) = dyn_param(name, "mix") {
            return Some(mix(n as usize));
        }
        if let Some(n) = dyn_param(name, "zipf") {
            return u32::try_from(n).ok().map(zipf);
        }
        if let Some(n) = dyn_param(name, "rw") {
            return (n <= 100).then(|| rw(n as u32));
        }
        if let Some(n) = dyn_param(name, "open") {
            return ((1..=1000).contains(&n) && 1000 % n == 0).then(|| open_loop(n as u32));
        }
        if let Some(path) = name.strip_prefix("trace:") {
            return trace_file(path).ok();
        }
        None
    }

    /// Registered names, in registration order.
    pub fn names(&self) -> Vec<&str> {
        self.entries.iter().map(WorkloadHandle::name).collect()
    }

    /// Registered handles, in registration order.
    pub fn handles(&self) -> impl Iterator<Item = &WorkloadHandle> {
        self.entries.iter()
    }

    /// Number of registered workloads.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Parses the numeric suffix of a dynamic form, rejecting non-canonical
/// spellings (`rw050`, `rw+50`): the suffix must render back identically,
/// or the returned handle's name would differ from the requested key and
/// name-keyed caches/lookups would silently disagree with the axis label.
fn dyn_param(name: &str, prefix: &str) -> Option<u64> {
    let suffix = name.strip_prefix(prefix)?;
    let n: u64 = suffix.parse().ok()?;
    (n.to_string() == suffix).then_some(n)
}

/// Resolves `name` against the standard registry.
///
/// # Panics
///
/// Panics when `name` does not resolve — a typo'd `--workload=` axis is a
/// usage error, not a recoverable state. A `trace:` form that fails to
/// load panics with the typed parse error's message.
pub fn workload(name: &str) -> WorkloadHandle {
    if let Some(path) = name.strip_prefix("trace:") {
        return trace_file(path).unwrap_or_else(|e| panic!("--workload={name}: {e}"));
    }
    let registry = WorkloadRegistry::standard();
    registry.lookup(name).unwrap_or_else(|| {
        panic!(
            "unknown workload `{name}`; registered: {} (plus mix<N>, zipf<N>, rw<N>, open<N>, trace:<path>)",
            registry.names().join(", ")
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Family;

    #[test]
    fn standard_registry_covers_all_three_families() {
        let r = WorkloadRegistry::standard();
        let family_of = |name: &str| r.lookup(name).map(|h| h.family());
        assert_eq!(family_of("mix0"), Some(Family::Synthetic));
        assert_eq!(family_of("mcf"), Some(Family::Synthetic));
        assert_eq!(family_of("stream"), Some(Family::Generator));
        assert_eq!(family_of("demo-trace"), Some(Family::Trace));
        // Every roster benchmark is individually addressable.
        for b in BENCHMARKS {
            assert!(r.lookup(b.name).is_some(), "{} missing", b.name);
        }
        assert!(r.len() >= 30);
        assert_eq!(r.names()[0], "mix0");
    }

    #[test]
    fn parameterized_names_resolve_dynamically() {
        let r = WorkloadRegistry::standard();
        assert_eq!(r.lookup("mix37").unwrap().name(), "mix37");
        assert_eq!(r.lookup("zipf123").unwrap().name(), "zipf123");
        assert_eq!(r.lookup("rw99").unwrap().name(), "rw99");
        assert_eq!(r.lookup("open4").unwrap().name(), "open4");
        // Out-of-domain parameters and unknown names do not resolve.
        assert!(r.lookup("rw101").is_none());
        assert!(r.lookup("open0").is_none());
        assert!(r.lookup("open600").is_none(), "600 does not divide 1000");
        assert!(r.lookup("mixX").is_none());
        // Non-canonical numerals must not resolve to a differently-named
        // handle (axis label vs identity mismatch).
        assert!(r.lookup("rw050").is_none());
        assert!(r.lookup("zipf+80").is_none());
        assert!(r.lookup("nope").is_none());
        assert!(r.lookup("trace:/no/such/file").is_none());
    }

    #[test]
    fn register_replaces_by_name() {
        let mut r = WorkloadRegistry::new();
        r.register(crate::generators::rw(50));
        r.register(crate::generators::rw(50));
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn every_registered_workload_has_a_summary() {
        for h in WorkloadRegistry::standard().handles() {
            assert!(!h.summary().is_empty(), "{} lacks a summary", h.name());
        }
    }

    #[test]
    #[should_panic(expected = "unknown workload")]
    fn unknown_workload_panics_with_the_known_list() {
        let _ = workload("definitely-not-a-workload");
    }
}
