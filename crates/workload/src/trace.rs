//! Line-oriented trace frontend: parse, write and replay ramulator2-style
//! `.trace` files.
//!
//! ## Format
//!
//! One record per line, `#`-comments and blank lines ignored:
//!
//! ```text
//! # <bubble_count> <addr> [R|W]
//! 27 0x1a3f40
//! 0 68719476736 W
//! ```
//!
//! * `bubble_count` — non-memory instructions preceding the access
//!   (decimal; values beyond `u32::MAX` saturate),
//! * `addr` — byte address, decimal or `0x`-prefixed hex,
//! * optional third token `W`/`w` marks a write; `R`/`r` (or nothing) is a
//!   read.
//!
//! Parsing returns a typed [`ParseError`] naming the line and token — a
//! malformed trace is never a panic. The writer emits exactly this format,
//! and [`Trace::capture`] dumps any [`Workload`] into it, so every
//! generator can be serialized and replayed **bit-identically**: a frontend
//! emits at most one [`Op::Compute`] gap between memory events (the trait
//! contract), which is precisely one record.

use crate::{Family, Op, Workload, WorkloadHandle, WorkloadProfile, CORE_WINDOW_BYTES};
use std::fmt;
use std::io::{self, Write};
use std::path::Path;
use std::sync::Arc;

/// One trace record: a compute bubble followed by one memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// Non-memory instructions before the access.
    pub bubbles: u32,
    /// Byte address of the access.
    pub addr: u64,
    /// True for stores.
    pub is_write: bool,
}

/// A typed trace-parsing failure. Lines are 1-based.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// The file could not be read.
    Io {
        /// Path that failed.
        path: String,
        /// Underlying error rendered (io::Error is not Clone/PartialEq).
        msg: String,
    },
    /// A record line had fewer than 2 or more than 3 tokens.
    FieldCount {
        /// 1-based line number.
        line: usize,
        /// Tokens found.
        got: usize,
    },
    /// The bubble-count token did not parse as an unsigned integer.
    BadBubble {
        /// 1-based line number.
        line: usize,
        /// Offending token.
        token: String,
    },
    /// The address token did not parse as decimal or `0x`-hex.
    BadAddr {
        /// 1-based line number.
        line: usize,
        /// Offending token.
        token: String,
    },
    /// The third token was neither `R`/`r` nor `W`/`w`.
    BadOpFlag {
        /// 1-based line number.
        line: usize,
        /// Offending token.
        token: String,
    },
    /// The trace holds no records (only comments/blank lines).
    Empty,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Io { path, msg } => write!(f, "cannot read trace `{path}`: {msg}"),
            ParseError::FieldCount { line, got } => write!(
                f,
                "trace line {line}: expected `<bubbles> <addr> [R|W]`, found {got} fields"
            ),
            ParseError::BadBubble { line, token } => {
                write!(
                    f,
                    "trace line {line}: bubble count `{token}` is not an integer"
                )
            }
            ParseError::BadAddr { line, token } => write!(
                f,
                "trace line {line}: address `{token}` is not decimal or 0x-hex"
            ),
            ParseError::BadOpFlag { line, token } => {
                write!(f, "trace line {line}: op flag `{token}` is neither R nor W")
            }
            ParseError::Empty => write!(f, "trace holds no records"),
        }
    }
}

impl std::error::Error for ParseError {}

/// A parsed trace: shared, immutable records plus summary statistics.
#[derive(Debug, Clone)]
pub struct Trace {
    records: Arc<Vec<TraceRecord>>,
}

impl Trace {
    /// Builds a trace from records.
    ///
    /// # Errors
    ///
    /// Returns [`ParseError::Empty`] when `records` is empty — a frontend
    /// must always have an event to emit.
    pub fn new(records: Vec<TraceRecord>) -> Result<Self, ParseError> {
        if records.is_empty() {
            return Err(ParseError::Empty);
        }
        Ok(Trace {
            records: Arc::new(records),
        })
    }

    /// Parses trace text (see the module docs for the format).
    ///
    /// # Errors
    ///
    /// Returns the first [`ParseError`] encountered; never panics on
    /// malformed input.
    pub fn parse(text: &str) -> Result<Self, ParseError> {
        let mut records = Vec::new();
        for (idx, raw) in text.lines().enumerate() {
            let line = idx + 1;
            if let Some(rec) = parse_line(line, raw)? {
                records.push(rec);
            }
        }
        Trace::new(records)
    }

    /// Loads and parses a trace file.
    ///
    /// # Errors
    ///
    /// Returns [`ParseError::Io`] when the file cannot be read, or any
    /// parse error from its content.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, ParseError> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path).map_err(|e| ParseError::Io {
            path: path.display().to_string(),
            msg: e.to_string(),
        })?;
        Trace::parse(&text)
    }

    /// The records, in file order.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Serializes the trace in the parseable format (header comment,
    /// hex addresses, `W` flags on stores).
    ///
    /// # Errors
    ///
    /// Propagates writer errors.
    pub fn write_to(&self, mut w: impl Write) -> io::Result<()> {
        writeln!(w, "# hira-workload trace v1")?;
        writeln!(w, "# <bubble_count> <addr> [R|W]")?;
        for r in self.records.iter() {
            if r.is_write {
                writeln!(w, "{} 0x{:x} W", r.bubbles, r.addr)?;
            } else {
                writeln!(w, "{} 0x{:x}", r.bubbles, r.addr)?;
            }
        }
        Ok(())
    }

    /// [`Trace::write_to`] into a string.
    pub fn to_text(&self) -> String {
        let mut buf = Vec::new();
        self.write_to(&mut buf)
            .expect("Vec<u8> writes are infallible");
        String::from_utf8(buf).expect("trace text is ASCII")
    }

    /// Writes the trace to a file.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn save(&self, path: impl AsRef<Path>) -> io::Result<()> {
        std::fs::write(path.as_ref(), self.to_text())
    }

    /// Captures the next `n_records` memory accesses of a running frontend
    /// (compute gaps fold into the following record's bubble count). A
    /// capture at core 0 replays bit-identically through
    /// [`Trace::into_handle`].
    ///
    /// # Panics
    ///
    /// Panics when `n_records` is zero — a trace must hold at least one
    /// record (the invariant [`Trace::new`] enforces).
    pub fn capture(wl: &mut dyn Workload, n_records: usize) -> Self {
        assert!(n_records > 0, "a capture needs at least one record");
        let mut records = Vec::with_capacity(n_records);
        let mut bubbles = 0u64;
        while records.len() < n_records {
            let op = wl.next_access();
            let (addr, is_write) = match op {
                Op::Compute(n) => {
                    bubbles += u64::from(n);
                    continue;
                }
                Op::Load(a) => (a, false),
                Op::Store(a) => (a, true),
            };
            records.push(TraceRecord {
                bubbles: u32::try_from(bubbles).unwrap_or(u32::MAX),
                addr,
                is_write,
            });
            bubbles = 0;
        }
        Trace {
            records: Arc::new(records),
        }
    }

    /// Wraps the trace into a registrable handle under `name`. Every core
    /// replays the full record sequence (wrapping around when exhausted),
    /// with addresses folded into its own 1 GiB window. Replay is a pure
    /// event stream — no phase state, no ROI resets — so a captured
    /// generator replays **bit-identically** through an entire simulation,
    /// warmup included.
    pub fn into_handle(self, name: impl Into<String>) -> WorkloadHandle {
        let name = name.into();
        let stats = self.stats();
        let records = self.records;
        WorkloadHandle::new(
            name.clone(),
            Family::Trace,
            format!(
                "trace replay: {} records, {:.1} mem/kinst, {:.0}% writes",
                stats.records,
                stats.mem_per_kinst(),
                stats.write_frac() * 100.0
            ),
            move |env| {
                Box::new(TraceReplay {
                    name: name.clone(),
                    records: records.clone(),
                    stats,
                    base: env.base_addr(),
                    idx: 0,
                    gap_emitted: false,
                })
            },
        )
    }

    /// Summary statistics over the records.
    pub fn stats(&self) -> TraceStats {
        let mut s = TraceStats {
            records: self.records.len() as u64,
            ..TraceStats::default()
        };
        let mut min_line = u64::MAX;
        let mut max_line = 0;
        for r in self.records.iter() {
            s.bubbles += u64::from(r.bubbles);
            s.writes += u64::from(r.is_write);
            min_line = min_line.min(r.addr / 64);
            max_line = max_line.max(r.addr / 64);
        }
        // Guard the (Trace::new-enforced, but not type-enforced) non-empty
        // invariant rather than underflowing on a hand-rolled empty Trace.
        s.line_span = if s.records == 0 {
            0
        } else {
            max_line - min_line + 1
        };
        s
    }
}

/// Summary statistics of a [`Trace`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceStats {
    /// Number of records.
    pub records: u64,
    /// Total bubble instructions.
    pub bubbles: u64,
    /// Number of write records.
    pub writes: u64,
    /// Span between the lowest and highest touched line.
    pub line_span: u64,
}

impl TraceStats {
    /// Memory operations per kilo-instruction implied by the bubbles.
    pub fn mem_per_kinst(&self) -> f64 {
        self.records as f64 * 1000.0 / (self.records + self.bubbles).max(1) as f64
    }

    /// Fraction of records that are writes.
    pub fn write_frac(&self) -> f64 {
        self.writes as f64 / self.records.max(1) as f64
    }
}

fn parse_line(line: usize, raw: &str) -> Result<Option<TraceRecord>, ParseError> {
    let body = raw.trim();
    if body.is_empty() || body.starts_with('#') {
        return Ok(None);
    }
    let tokens: Vec<&str> = body.split_whitespace().collect();
    if tokens.len() < 2 || tokens.len() > 3 {
        return Err(ParseError::FieldCount {
            line,
            got: tokens.len(),
        });
    }
    let bubbles: u64 = tokens[0].parse().map_err(|_| ParseError::BadBubble {
        line,
        token: tokens[0].to_owned(),
    })?;
    let addr = parse_addr(tokens[1]).ok_or_else(|| ParseError::BadAddr {
        line,
        token: tokens[1].to_owned(),
    })?;
    let is_write = match tokens.get(2) {
        None => false,
        Some(&"W") | Some(&"w") => true,
        Some(&"R") | Some(&"r") => false,
        Some(t) => {
            return Err(ParseError::BadOpFlag {
                line,
                token: (*t).to_owned(),
            })
        }
    };
    Ok(Some(TraceRecord {
        bubbles: u32::try_from(bubbles).unwrap_or(u32::MAX),
        addr,
        is_write,
    }))
}

fn parse_addr(token: &str) -> Option<u64> {
    if let Some(hex) = token
        .strip_prefix("0x")
        .or_else(|| token.strip_prefix("0X"))
    {
        u64::from_str_radix(hex, 16).ok()
    } else {
        token.parse().ok()
    }
}

/// Loads `path` and wraps it into a handle named `trace:<path>` — the
/// dynamic `trace:` form [`crate::WorkloadRegistry::lookup`] resolves.
///
/// # Errors
///
/// Returns any [`ParseError`] from loading the file.
pub fn trace_file(path: &str) -> Result<WorkloadHandle, ParseError> {
    Ok(Trace::load(path)?.into_handle(format!("trace:{path}")))
}

/// A per-core trace replayer.
#[derive(Debug)]
struct TraceReplay {
    name: String,
    records: Arc<Vec<TraceRecord>>,
    stats: TraceStats,
    base: u64,
    idx: usize,
    /// True once the current record's bubble gap has been emitted.
    gap_emitted: bool,
}

impl Workload for TraceReplay {
    fn name(&self) -> &str {
        &self.name
    }

    fn next_access(&mut self) -> Op {
        let rec = self.records[self.idx];
        if !self.gap_emitted && rec.bubbles > 0 {
            self.gap_emitted = true;
            return Op::Compute(rec.bubbles);
        }
        self.gap_emitted = false;
        self.idx = (self.idx + 1) % self.records.len();
        let addr = self.base + rec.addr % CORE_WINDOW_BYTES;
        if rec.is_write {
            Op::Store(addr)
        } else {
            Op::Load(addr)
        }
    }

    fn profile(&self) -> WorkloadProfile {
        WorkloadProfile {
            family: Family::Trace,
            summary: format!("replay of {} trace records", self.stats.records),
            mem_per_kinst: self.stats.mem_per_kinst(),
            store_frac: self.stats.write_frac(),
            footprint_lines: self.stats.line_span,
        }
    }
}

/// The embedded demonstration trace the standard registry registers as
/// `demo-trace` — generated once by [`Trace::capture`] over the `random`
/// generator and committed, so the trace family is exercised without any
/// on-disk file.
pub fn demo_trace() -> Trace {
    Trace::parse(include_str!("../data/demo.trace"))
        .expect("the embedded demo trace is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::random;
    use crate::WorkloadEnv;

    #[test]
    fn parses_comments_decimal_hex_and_flags() {
        let t =
            Trace::parse("# header\n\n12 0x40\n0 128 W\n3 0X80 r\n   # indented comment\n7 64 w\n")
                .unwrap();
        assert_eq!(
            t.records(),
            &[
                TraceRecord {
                    bubbles: 12,
                    addr: 0x40,
                    is_write: false
                },
                TraceRecord {
                    bubbles: 0,
                    addr: 128,
                    is_write: true
                },
                TraceRecord {
                    bubbles: 3,
                    addr: 0x80,
                    is_write: false
                },
                TraceRecord {
                    bubbles: 7,
                    addr: 64,
                    is_write: true
                },
            ]
        );
    }

    #[test]
    fn malformed_lines_yield_typed_errors_never_panics() {
        // The fuzz-ish corpus: every malformed shape maps to its typed
        // error, with the right 1-based line number.
        let cases: &[(&str, ParseError)] = &[
            (
                "1 0x40\nnonsense\n",
                ParseError::FieldCount { line: 2, got: 1 },
            ),
            ("1 2 3 4\n", ParseError::FieldCount { line: 1, got: 4 }),
            (
                "x 0x40\n",
                ParseError::BadBubble {
                    line: 1,
                    token: "x".into(),
                },
            ),
            (
                "-3 0x40\n",
                ParseError::BadBubble {
                    line: 1,
                    token: "-3".into(),
                },
            ),
            (
                "1 0xZZ\n",
                ParseError::BadAddr {
                    line: 1,
                    token: "0xZZ".into(),
                },
            ),
            (
                "1 addr\n",
                ParseError::BadAddr {
                    line: 1,
                    token: "addr".into(),
                },
            ),
            (
                "# only\n1 0x40 X\n",
                ParseError::BadOpFlag {
                    line: 2,
                    token: "X".into(),
                },
            ),
            ("# only comments\n\n", ParseError::Empty),
            ("", ParseError::Empty),
        ];
        for (text, want) in cases {
            assert_eq!(&Trace::parse(text).unwrap_err(), want, "input {text:?}");
        }
        // Errors render with their coordinates.
        let msg = Trace::parse("1 2 3 4\n").unwrap_err().to_string();
        assert!(msg.contains("line 1") && msg.contains("4 fields"), "{msg}");
    }

    #[test]
    fn bubbles_saturate_instead_of_overflowing() {
        let t = Trace::parse("99999999999999999999 0x40\n");
        // 20 nines overflows u64 → BadBubble; u32-overflow saturates.
        assert!(matches!(t, Err(ParseError::BadBubble { .. })));
        let t = Trace::parse("5000000000 0x40\n").unwrap();
        assert_eq!(t.records()[0].bubbles, u32::MAX);
    }

    #[test]
    fn write_parse_roundtrip_is_lossless() {
        let mut wl = random().build(&WorkloadEnv {
            core: 0,
            cores: 1,
            seed: 11,
        });
        let t = Trace::capture(wl.as_mut(), 300);
        let back = Trace::parse(&t.to_text()).unwrap();
        assert_eq!(t.records(), back.records());
    }

    #[test]
    fn capture_then_replay_is_bit_identical() {
        let env = WorkloadEnv {
            core: 0,
            cores: 1,
            seed: 23,
        };
        let mut gen = random().build(&env);
        let trace = Trace::capture(gen.as_mut(), 400);
        // Replay must reproduce the generator's event stream exactly, for
        // every event the capture covers (one per record, plus one gap per
        // record with a non-zero bubble count — after that the replay
        // wraps while the generator continues fresh).
        let events =
            trace.records().len() + trace.records().iter().filter(|r| r.bubbles > 0).count();
        assert!(events > 600, "capture too small to be meaningful");
        let mut fresh = random().build(&env);
        let mut replay = trace.into_handle("t").build(&env);
        for i in 0..events {
            assert_eq!(fresh.next_access(), replay.next_access(), "event {i}");
        }
    }

    #[test]
    fn capture_preserves_store_flags() {
        let mut wl = random().build(&WorkloadEnv {
            core: 0,
            cores: 1,
            seed: 5,
        });
        let t = Trace::capture(wl.as_mut(), 400);
        let writes = t.records().iter().filter(|r| r.is_write).count();
        // random() stores 25% of the time.
        assert!(writes > 50 && writes < 150, "writes {writes}");
    }

    #[test]
    fn replay_wraps_and_respects_core_windows() {
        let t = Trace::new(vec![
            TraceRecord {
                bubbles: 0,
                addr: 64,
                is_write: false,
            },
            TraceRecord {
                bubbles: 2,
                addr: 128,
                is_write: true,
            },
        ])
        .unwrap();
        let mut wl = t.into_handle("t").build(&WorkloadEnv {
            core: 2,
            cores: 4,
            seed: 0,
        });
        let base = 2u64 << 30;
        assert_eq!(wl.next_access(), Op::Load(base + 64));
        assert_eq!(wl.next_access(), Op::Compute(2));
        assert_eq!(wl.next_access(), Op::Store(base + 128));
        // Wrap-around: the sequence repeats.
        assert_eq!(wl.next_access(), Op::Load(base + 64));
    }

    #[test]
    fn io_errors_are_typed() {
        let err = Trace::load("/definitely/not/a/path.trace").unwrap_err();
        assert!(matches!(err, ParseError::Io { .. }));
        assert!(trace_file("/definitely/not/a/path.trace").is_err());
    }

    #[test]
    fn demo_trace_is_wellformed_and_nontrivial() {
        let t = demo_trace();
        assert!(t.records().len() >= 64);
        let s = t.stats();
        assert!(s.writes > 0, "demo trace should exercise the W flag");
        assert!(s.bubbles > 0, "demo trace should carry compute bubbles");
    }
}
