//! The SPEC CPU2006-like synthetic roster and its multiprogrammed mixes
//! (§7), ported onto the open [`Workload`] trait.
//!
//! The paper runs 125 8-core multiprogrammed mixes of SPEC CPU2006. The
//! traces themselves are not redistributable, so each benchmark is modelled
//! by its published first-order memory behaviour — LLC misses per
//! kilo-instruction, row-buffer locality, store fraction, stream count and
//! footprint — and a deterministic generator reproduces an instruction
//! stream with those properties. Relative weighted-speedup trends (which is
//! what every figure plots) depend on exactly these properties.
//!
//! The generator's RNG keying is **bit-identical** to the pre-trait
//! implementation (`Stream::from_words(&[seed, TRC, core])`, mix draws from
//! `Stream::from_words(&[suite_seed, MIX, id])`), so every previously
//! published figure and the tracked `BENCH_*.json` baselines reproduce
//! unchanged through the new frontend.

use crate::{Family, Op, Workload, WorkloadEnv, WorkloadHandle, WorkloadProfile};
use hira_dram::rng::Stream;

/// The suite seed behind the default [`mix`] handles — the seed the bench
/// harness has always drawn its mix suite from.
pub const MIX_SUITE_SEED: u64 = 0xA11CE;

/// Stream tag for per-core instruction-stream RNGs ("TRC").
const TRC_TAG: u64 = 0x0054_5243;

/// Stream tag for mix composition draws ("MIX").
const MIX_TAG: u64 = 0x004D_4958;

/// One benchmark's memory-behaviour profile.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Benchmark {
    /// SPEC-like name.
    pub name: &'static str,
    /// Memory operations (LLC-level accesses) per kilo-instruction.
    pub mem_per_kinst: f64,
    /// Probability that an access continues its stream sequentially
    /// (row-buffer locality).
    pub locality: f64,
    /// Fraction of memory operations that are stores.
    pub store_frac: f64,
    /// Concurrent access streams (bank-level parallelism).
    pub streams: usize,
    /// Footprint in 64 B lines.
    pub footprint_lines: u64,
}

/// The benchmark roster (SPEC CPU2006-inspired; higher rows are more
/// memory-intensive).
pub const BENCHMARKS: &[Benchmark] = &[
    Benchmark {
        name: "mcf",
        mem_per_kinst: 33.0,
        locality: 0.25,
        store_frac: 0.18,
        streams: 6,
        footprint_lines: 1 << 22,
    },
    Benchmark {
        name: "lbm",
        mem_per_kinst: 31.0,
        locality: 0.80,
        store_frac: 0.45,
        streams: 4,
        footprint_lines: 1 << 22,
    },
    Benchmark {
        name: "soplex",
        mem_per_kinst: 27.0,
        locality: 0.60,
        store_frac: 0.20,
        streams: 5,
        footprint_lines: 1 << 21,
    },
    Benchmark {
        name: "milc",
        mem_per_kinst: 25.0,
        locality: 0.50,
        store_frac: 0.30,
        streams: 4,
        footprint_lines: 1 << 21,
    },
    Benchmark {
        name: "libquantum",
        mem_per_kinst: 25.0,
        locality: 0.90,
        store_frac: 0.25,
        streams: 2,
        footprint_lines: 1 << 20,
    },
    Benchmark {
        name: "omnetpp",
        mem_per_kinst: 20.0,
        locality: 0.30,
        store_frac: 0.30,
        streams: 8,
        footprint_lines: 1 << 21,
    },
    Benchmark {
        name: "gemsfdtd",
        mem_per_kinst: 18.0,
        locality: 0.60,
        store_frac: 0.35,
        streams: 6,
        footprint_lines: 1 << 21,
    },
    Benchmark {
        name: "leslie3d",
        mem_per_kinst: 15.0,
        locality: 0.70,
        store_frac: 0.35,
        streams: 6,
        footprint_lines: 1 << 20,
    },
    Benchmark {
        name: "bwaves",
        mem_per_kinst: 15.0,
        locality: 0.75,
        store_frac: 0.30,
        streams: 4,
        footprint_lines: 1 << 21,
    },
    Benchmark {
        name: "sphinx3",
        mem_per_kinst: 12.0,
        locality: 0.60,
        store_frac: 0.10,
        streams: 4,
        footprint_lines: 1 << 19,
    },
    Benchmark {
        name: "astar",
        mem_per_kinst: 8.0,
        locality: 0.35,
        store_frac: 0.25,
        streams: 4,
        footprint_lines: 1 << 20,
    },
    Benchmark {
        name: "zeusmp",
        mem_per_kinst: 6.0,
        locality: 0.55,
        store_frac: 0.30,
        streams: 4,
        footprint_lines: 1 << 19,
    },
    Benchmark {
        name: "cactusadm",
        mem_per_kinst: 5.0,
        locality: 0.50,
        store_frac: 0.35,
        streams: 4,
        footprint_lines: 1 << 19,
    },
    Benchmark {
        name: "wrf",
        mem_per_kinst: 5.0,
        locality: 0.60,
        store_frac: 0.30,
        streams: 4,
        footprint_lines: 1 << 18,
    },
    Benchmark {
        name: "bzip2",
        mem_per_kinst: 3.0,
        locality: 0.50,
        store_frac: 0.30,
        streams: 2,
        footprint_lines: 1 << 18,
    },
    Benchmark {
        name: "gcc",
        mem_per_kinst: 2.0,
        locality: 0.50,
        store_frac: 0.30,
        streams: 3,
        footprint_lines: 1 << 17,
    },
    Benchmark {
        name: "hmmer",
        mem_per_kinst: 1.0,
        locality: 0.60,
        store_frac: 0.25,
        streams: 2,
        footprint_lines: 1 << 15,
    },
    Benchmark {
        name: "gobmk",
        mem_per_kinst: 0.8,
        locality: 0.40,
        store_frac: 0.25,
        streams: 2,
        footprint_lines: 1 << 15,
    },
    Benchmark {
        name: "perlbench",
        mem_per_kinst: 0.8,
        locality: 0.40,
        store_frac: 0.30,
        streams: 2,
        footprint_lines: 1 << 15,
    },
    Benchmark {
        name: "h264ref",
        mem_per_kinst: 0.7,
        locality: 0.60,
        store_frac: 0.25,
        streams: 2,
        footprint_lines: 1 << 14,
    },
    Benchmark {
        name: "gromacs",
        mem_per_kinst: 0.6,
        locality: 0.50,
        store_frac: 0.30,
        streams: 2,
        footprint_lines: 1 << 14,
    },
    Benchmark {
        name: "sjeng",
        mem_per_kinst: 0.5,
        locality: 0.40,
        store_frac: 0.25,
        streams: 2,
        footprint_lines: 1 << 14,
    },
    Benchmark {
        name: "calculix",
        mem_per_kinst: 0.5,
        locality: 0.60,
        store_frac: 0.25,
        streams: 2,
        footprint_lines: 1 << 14,
    },
    Benchmark {
        name: "tonto",
        mem_per_kinst: 0.3,
        locality: 0.50,
        store_frac: 0.25,
        streams: 2,
        footprint_lines: 1 << 13,
    },
    Benchmark {
        name: "namd",
        mem_per_kinst: 0.2,
        locality: 0.50,
        store_frac: 0.25,
        streams: 2,
        footprint_lines: 1 << 13,
    },
    Benchmark {
        name: "povray",
        mem_per_kinst: 0.05,
        locality: 0.50,
        store_frac: 0.25,
        streams: 1,
        footprint_lines: 1 << 12,
    },
];

/// Looks a benchmark up by name.
pub fn benchmark(name: &str) -> Option<&'static Benchmark> {
    BENCHMARKS.iter().find(|b| b.name == name)
}

/// Deterministic instruction-stream generator for one roster benchmark on
/// one core.
#[derive(Debug, Clone)]
pub struct SpecGen {
    bench: &'static Benchmark,
    rng: Stream,
    /// Current line index per stream.
    streams: Vec<u64>,
    /// Byte offset isolating this core's address space.
    base: u64,
    /// Set once the compute gap has been emitted and a memory op is owed.
    mem_pending: bool,
}

impl SpecGen {
    /// Builds the generator for `bench` in `env`.
    pub fn new(bench: &'static Benchmark, env: &WorkloadEnv) -> Self {
        let mut rng = Stream::from_words(&[env.seed, TRC_TAG, env.core as u64]);
        let streams = (0..bench.streams)
            .map(|_| rng.next_below(bench.footprint_lines))
            .collect();
        SpecGen {
            bench,
            rng,
            streams,
            base: env.base_addr(),
            mem_pending: false,
        }
    }

    /// The benchmark this generator replays.
    pub fn benchmark(&self) -> &'static Benchmark {
        self.bench
    }
}

impl Workload for SpecGen {
    fn name(&self) -> &str {
        self.bench.name
    }

    /// Next event. Memory events are separated by geometric compute gaps
    /// (see `geometric_gap` in the crate root).
    fn next_access(&mut self) -> Op {
        if !self.mem_pending {
            self.mem_pending = true;
            let gap = crate::geometric_gap(&mut self.rng, self.bench.mem_per_kinst);
            if gap > 0 {
                return Op::Compute(gap);
            }
        }
        self.mem_pending = false;
        // A memory access: pick a stream, continue or jump.
        let s = self.rng.next_below(self.streams.len() as u64) as usize;
        if self.rng.next_bool(self.bench.locality) {
            self.streams[s] = (self.streams[s] + 1) % self.bench.footprint_lines;
        } else {
            self.streams[s] = self.rng.next_below(self.bench.footprint_lines);
        }
        let addr = self.base + self.streams[s] * 64;
        if self.rng.next_bool(self.bench.store_frac) {
            Op::Store(addr)
        } else {
            Op::Load(addr)
        }
    }

    fn profile(&self) -> WorkloadProfile {
        WorkloadProfile {
            family: Family::Synthetic,
            summary: format!(
                "SPEC-like {}: {} mem/kinst, locality {:.2}",
                self.bench.name, self.bench.mem_per_kinst, self.bench.locality
            ),
            mem_per_kinst: self.bench.mem_per_kinst,
            store_frac: self.bench.store_frac,
            footprint_lines: self.bench.footprint_lines,
        }
    }
}

/// A handle running `bench` on every core.
pub fn spec_handle(bench: &'static Benchmark) -> WorkloadHandle {
    WorkloadHandle::new(
        bench.name,
        Family::Synthetic,
        format!(
            "SPEC-like roster benchmark ({} mem/kinst, locality {:.2}, {:.0}% stores)",
            bench.mem_per_kinst,
            bench.locality,
            bench.store_frac * 100.0
        ),
        move |env| Box::new(SpecGen::new(bench, env)),
    )
}

/// A handle running the named roster benchmark on every core.
///
/// # Panics
///
/// Panics when `name` is not on the roster — a typo'd benchmark name is a
/// usage error (use [`benchmark`] for fallible lookup).
pub fn spec(name: &str) -> WorkloadHandle {
    spec_handle(benchmark(name).unwrap_or_else(|| {
        panic!(
            "unknown roster benchmark `{name}`; roster: {}",
            BENCHMARKS
                .iter()
                .map(|b| b.name)
                .collect::<Vec<_>>()
                .join(", ")
        )
    }))
}

/// The benchmark core `core` runs in mix `id` of the suite drawn from
/// `suite_seed`: benchmarks are drawn uniformly at random from the roster,
/// as the paper draws its 125 mixes from SPEC CPU2006 (§7). The draw
/// sequence reproduces the legacy `mixes()` suite exactly.
fn mix_member(suite_seed: u64, id: usize, core: usize) -> &'static Benchmark {
    let mut s = Stream::from_words(&[suite_seed, MIX_TAG, id as u64]);
    let mut pick = 0;
    for _ in 0..=core {
        pick = s.next_below(BENCHMARKS.len() as u64) as usize;
    }
    &BENCHMARKS[pick]
}

/// Multiprogrammed mix `id` of the standard suite ([`MIX_SUITE_SEED`]):
/// each core runs its own roster benchmark. Instance names are the
/// per-core benchmark names, so weighted-speedup denominators resolve per
/// member.
pub fn mix(id: usize) -> WorkloadHandle {
    mix_named(format!("mix{id}"), MIX_SUITE_SEED, id)
}

/// [`mix`] from an explicit suite seed (named `mix<id>@<seed:x>`), for
/// experiments that need a suite disjoint from the standard one.
pub fn mix_with_seed(id: usize, suite_seed: u64) -> WorkloadHandle {
    mix_named(format!("mix{id}@{suite_seed:x}"), suite_seed, id)
}

fn mix_named(name: String, suite_seed: u64, id: usize) -> WorkloadHandle {
    WorkloadHandle::new(
        name,
        Family::Synthetic,
        format!("8-core-style multiprogrammed roster mix #{id} (one benchmark per core)"),
        move |env| Box::new(SpecGen::new(mix_member(suite_seed, id, env.core), env)),
    )
}

/// An explicit multiprogrammed roster: core `i` runs `names[i % len]`.
/// The handle name encodes the roster, so two configs selecting the same
/// roster compare equal.
///
/// # Panics
///
/// Panics when `names` is empty or contains a name not on the roster.
pub fn roster(names: &[&str]) -> WorkloadHandle {
    assert!(!names.is_empty(), "a roster needs at least one benchmark");
    let members: Vec<&'static Benchmark> = names.iter().map(|n| spec_member(n)).collect();
    WorkloadHandle::new(
        format!("roster({})", names.join(",")),
        Family::Synthetic,
        "explicit multiprogrammed roster (core i runs names[i % len])",
        move |env| Box::new(SpecGen::new(members[env.core % members.len()], env)),
    )
}

fn spec_member(name: &str) -> &'static Benchmark {
    benchmark(name).unwrap_or_else(|| panic!("unknown roster benchmark `{name}`"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env(core: usize, seed: u64) -> WorkloadEnv {
        WorkloadEnv {
            core,
            cores: 8,
            seed,
        }
    }

    #[test]
    fn roster_is_sorted_by_intensity_and_named_uniquely() {
        assert!(BENCHMARKS
            .windows(2)
            .all(|w| w[0].mem_per_kinst >= w[1].mem_per_kinst));
        let names: std::collections::HashSet<_> = BENCHMARKS.iter().map(|b| b.name).collect();
        assert_eq!(names.len(), BENCHMARKS.len());
        assert!(benchmark("mcf").is_some());
        assert!(benchmark("nonesuch").is_none());
    }

    #[test]
    fn mix_members_are_deterministic_and_suite_dependent() {
        let a = mix(3).instance_names(8, 42);
        let b = mix(3).instance_names(8, 99);
        // Composition depends on the suite draw, not on the config seed.
        assert_eq!(a, b);
        // Different mixes and different suite seeds each give different
        // rosters (two separate assertions: either keying regressing must
        // fail the test on its own).
        assert_ne!(a, mix(4).instance_names(8, 42));
        assert_ne!(a, mix_with_seed(3, 0xBEEF).instance_names(8, 42));
    }

    #[test]
    fn trace_memory_rate_matches_profile() {
        let bench = benchmark("milc").unwrap();
        let mut gen = SpecGen::new(bench, &env(0, 7));
        let mut insts = 0u64;
        let mut mems = 0u64;
        while insts < 2_000_000 {
            match gen.next_access() {
                Op::Compute(n) => insts += u64::from(n),
                Op::Load(_) | Op::Store(_) => {
                    insts += 1;
                    mems += 1;
                }
            }
        }
        let per_kinst = mems as f64 * 1000.0 / insts as f64;
        assert!(
            (per_kinst - bench.mem_per_kinst).abs() < bench.mem_per_kinst * 0.15,
            "measured {per_kinst} vs profile {}",
            bench.mem_per_kinst
        );
    }

    #[test]
    fn store_fraction_tracks_profile() {
        let bench = benchmark("lbm").unwrap();
        let mut gen = SpecGen::new(bench, &env(1, 7));
        let (mut loads, mut stores) = (0u64, 0u64);
        for _ in 0..200_000 {
            match gen.next_access() {
                Op::Load(_) => loads += 1,
                Op::Store(_) => stores += 1,
                Op::Compute(_) => {}
            }
        }
        let frac = stores as f64 / (loads + stores) as f64;
        assert!((frac - bench.store_frac).abs() < 0.05, "store frac {frac}");
    }

    #[test]
    fn cores_use_disjoint_address_spaces() {
        let bench = benchmark("mcf").unwrap();
        let mut g0 = SpecGen::new(bench, &env(0, 7));
        let mut g1 = SpecGen::new(bench, &env(1, 7));
        for _ in 0..1000 {
            if let Op::Load(a) | Op::Store(a) = g0.next_access() {
                assert!(a < 1 << 30);
            }
            if let Op::Load(a) | Op::Store(a) = g1.next_access() {
                assert!((1 << 30..2 << 30).contains(&a));
            }
        }
    }

    #[test]
    fn locality_produces_sequential_runs() {
        let streaming = benchmark("libquantum").unwrap();
        let scattered = benchmark("mcf").unwrap();
        let seq_frac = |b: &'static Benchmark| {
            let mut gen = SpecGen::new(b, &env(0, 9));
            let mut last: Option<u64> = None;
            let (mut seq, mut total) = (0u64, 0u64);
            for _ in 0..400_000 {
                if let Op::Load(a) | Op::Store(a) = gen.next_access() {
                    if let Some(l) = last {
                        total += 1;
                        if a == l + 64 {
                            seq += 1;
                        }
                    }
                    last = Some(a);
                }
            }
            seq as f64 / total as f64
        };
        assert!(seq_frac(streaming) > seq_frac(scattered) + 0.2);
    }

    #[test]
    fn explicit_roster_assigns_round_robin() {
        let h = roster(&["mcf", "lbm"]);
        let names = h.instance_names(4, 1);
        assert_eq!(names, ["mcf", "lbm", "mcf", "lbm"]);
        assert_eq!(h.name(), "roster(mcf,lbm)");
    }

    #[test]
    #[should_panic(expected = "unknown roster benchmark")]
    fn unknown_spec_name_panics_with_the_roster() {
        let _ = spec("nonesuch");
    }
}
