//! Parametric access-pattern generators.
//!
//! Where the [`spec`](mod@crate::spec) roster models *programs*, these model
//! *patterns*: each generator pins one first-order property of memory
//! behaviour (spatial locality, temporal skew, dependence, write ratio,
//! arrival process) so sweeps can attribute a refresh policy's wins and
//! losses to the property that causes them — the refresh-access-parallelism
//! methodology of Chang et al.
//!
//! All randomness derives from one [`Stream`] keyed by
//! `(seed, GEN, core, name-hash)`, so an instance's traffic is a pure
//! function of its environment. Footprints are powers of two (cheap
//! mask-scrambles for the chase/zipf bijections).

use crate::{Family, Op, Workload, WorkloadEnv, WorkloadHandle, WorkloadProfile};
use hira_dram::rng::{splitmix64, Stream};

/// Stream tag for generator RNGs ("GEN").
const GEN_TAG: u64 = 0x0047_454E;

/// FNV-1a of a name, folding the generator identity into its RNG key so
/// distinct generators never share a random stream.
fn name_key(name: &str) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in name.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Spatial/temporal address pattern.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Pattern {
    /// Sequential streams advancing `stride_lines` per access — maximal
    /// row-buffer locality at stride 1.
    Stream {
        /// Lines advanced per access.
        stride_lines: u64,
    },
    /// Uniform-random lines over the footprint — zero locality.
    Random,
    /// Dependent pointer chase: a full-period walk through a pseudorandom
    /// permutation of the footprint (single stream, zero locality, no
    /// address ever repeats within a lap).
    Chase,
    /// Hot/cold skew: `hot_prob` of accesses hit the first `hot_frac` of
    /// the footprint.
    Hotspot {
        /// Fraction of the footprint that is hot.
        hot_frac: f64,
        /// Probability an access targets the hot region.
        hot_prob: f64,
    },
    /// Zipfian popularity with exponent `theta` over a scrambled footprint.
    Zipf {
        /// Skew exponent (0 = uniform; 1 ≈ classic Zipf).
        theta: f64,
    },
}

/// Arrival process separating memory accesses.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Arrival {
    /// Geometric compute gaps with mean `1000 / mem_per_kinst` — the
    /// closed-loop model the roster uses (demand throttles with the core).
    ClosedLoop {
        /// Memory operations per kilo-instruction.
        mem_per_kinst: f64,
    },
    /// A fixed `gap_insts` compute gap before every access — a constant
    /// arrival rate the core sustains regardless of memory latency, the
    /// open-loop mode bandwidth studies use.
    OpenLoop {
        /// Non-memory instructions between consecutive accesses.
        gap_insts: u32,
    },
}

impl Arrival {
    /// Expected memory operations per kilo-instruction.
    pub fn mem_per_kinst(&self) -> f64 {
        match *self {
            Arrival::ClosedLoop { mem_per_kinst } => mem_per_kinst,
            Arrival::OpenLoop { gap_insts } => 1000.0 / f64::from(gap_insts + 1),
        }
    }
}

/// Full description of one parametric generator. [`GeneratorSpec::handle`]
/// wraps it into a registrable [`WorkloadHandle`]; the constructors below
/// ([`stream`], [`random`], …) cover the standard registry's points.
#[derive(Debug, Clone, PartialEq)]
pub struct GeneratorSpec {
    /// Registry name (the identity — encode parameters here).
    pub name: String,
    /// One-line description for listings.
    pub summary: String,
    /// Address pattern.
    pub pattern: Pattern,
    /// Arrival process.
    pub arrival: Arrival,
    /// Fraction of accesses that are stores.
    pub store_frac: f64,
    /// Footprint in 64 B lines (rounded up to a power of two).
    pub footprint_lines: u64,
    /// Concurrent streams (bank-level parallelism) for `Pattern::Stream`.
    pub streams: usize,
}

impl GeneratorSpec {
    /// Wraps the spec into a handle building per-core instances.
    pub fn handle(self) -> WorkloadHandle {
        WorkloadHandle::new(
            self.name.clone(),
            Family::Generator,
            self.summary.clone(),
            move |env| Box::new(Generator::new(self.clone(), env)),
        )
    }
}

/// A running generator instance (one core).
#[derive(Debug, Clone)]
pub struct Generator {
    spec: GeneratorSpec,
    rng: Stream,
    /// Per-stream line cursors (chase keeps its walk state in `cursors[0]`).
    cursors: Vec<u64>,
    /// Footprint rounded up to a power of two; `footprint - 1` is the mask.
    footprint: u64,
    /// Scramble key for the chase/zipf bijections.
    scramble: u64,
    base: u64,
    mem_pending: bool,
}

impl Generator {
    /// Builds the instance for `env`.
    pub fn new(spec: GeneratorSpec, env: &WorkloadEnv) -> Self {
        let mut rng =
            Stream::from_words(&[env.seed, GEN_TAG, env.core as u64, name_key(&spec.name)]);
        let footprint = spec.footprint_lines.max(2).next_power_of_two();
        let streams = spec.streams.max(1);
        let cursors = (0..streams).map(|_| rng.next_below(footprint)).collect();
        let scramble = rng.next_u64() | 1;
        Generator {
            spec,
            rng,
            cursors,
            footprint,
            scramble,
            base: env.base_addr(),
            mem_pending: false,
        }
    }

    fn next_line(&mut self) -> u64 {
        let mask = self.footprint - 1;
        match self.spec.pattern {
            Pattern::Stream { stride_lines } => {
                let s = self.rng.next_below(self.cursors.len() as u64) as usize;
                self.cursors[s] = (self.cursors[s] + stride_lines) & mask;
                self.cursors[s]
            }
            Pattern::Random => self.rng.next_below(self.footprint),
            Pattern::Chase => {
                // Full-period LCG walk (a ≡ 1 mod 4, c odd over 2^k),
                // emitted through a masked bijection (odd multiply +
                // xorshift, both invertible mod 2^k) so successors look
                // like pointer targets but never collide within a lap.
                self.cursors[0] = self.cursors[0]
                    .wrapping_mul(6_364_136_223_846_793_005)
                    .wrapping_add(self.scramble)
                    & mask;
                let t = self.cursors[0].wrapping_mul(self.scramble) & mask;
                t ^ (t >> 7)
            }
            Pattern::Hotspot { hot_frac, hot_prob } => {
                let hot = ((self.footprint as f64 * hot_frac) as u64).clamp(1, self.footprint - 1);
                if self.rng.next_bool(hot_prob) {
                    self.rng.next_below(hot)
                } else {
                    hot + self.rng.next_below(self.footprint - hot)
                }
            }
            Pattern::Zipf { theta } => {
                let u = self.rng.next_f64();
                let n = self.footprint as f64;
                let a = 1.0 - theta;
                let rank = if a.abs() < 1e-9 {
                    // theta = 1: harmonic CDF, rank = (n+1)^u - 1.
                    (n + 1.0).powf(u) - 1.0
                } else {
                    ((n.powf(a) - 1.0) * u + 1.0).powf(1.0 / a) - 1.0
                };
                let rank = (rank as u64).min(self.footprint - 1);
                // Scramble rank → line so popular lines spread over banks.
                splitmix64(rank ^ self.scramble) & mask
            }
        }
    }
}

impl Workload for Generator {
    fn name(&self) -> &str {
        &self.spec.name
    }

    fn next_access(&mut self) -> Op {
        if !self.mem_pending {
            self.mem_pending = true;
            let gap = match self.spec.arrival {
                Arrival::ClosedLoop { mem_per_kinst } => {
                    crate::geometric_gap(&mut self.rng, mem_per_kinst)
                }
                Arrival::OpenLoop { gap_insts } => gap_insts,
            };
            if gap > 0 {
                return Op::Compute(gap);
            }
        }
        self.mem_pending = false;
        let addr = self.base + self.next_line() * 64;
        if self.rng.next_bool(self.spec.store_frac) {
            Op::Store(addr)
        } else {
            Op::Load(addr)
        }
    }

    fn profile(&self) -> WorkloadProfile {
        WorkloadProfile {
            family: Family::Generator,
            summary: self.spec.summary.clone(),
            mem_per_kinst: self.spec.arrival.mem_per_kinst(),
            store_frac: self.spec.store_frac,
            footprint_lines: self.footprint,
        }
    }
}

/// Pure sequential streaming: 4 stride-1 streams, read-only — maximal
/// row-buffer locality, the friendliest traffic refresh can hide under.
pub fn stream() -> WorkloadHandle {
    GeneratorSpec {
        name: "stream".into(),
        summary: "pure sequential streams (stride 1, read-only, max row locality)".into(),
        pattern: Pattern::Stream { stride_lines: 1 },
        arrival: Arrival::ClosedLoop {
            mem_per_kinst: 30.0,
        },
        store_frac: 0.0,
        footprint_lines: 1 << 22,
        streams: 4,
    }
    .handle()
}

/// Uniform-random lines over 256 MiB — zero locality, every access a row
/// miss; the traffic most exposed to rank/bank blocking.
pub fn random() -> WorkloadHandle {
    GeneratorSpec {
        name: "random".into(),
        summary: "uniform-random lines over 256 MiB (zero locality)".into(),
        pattern: Pattern::Random,
        arrival: Arrival::ClosedLoop {
            mem_per_kinst: 30.0,
        },
        store_frac: 0.25,
        footprint_lines: 1 << 22,
        streams: 1,
    }
    .handle()
}

/// Dependent pointer chase over 64 MiB: a permutation walk with no reuse
/// within a lap — latency-bound traffic.
pub fn chase() -> WorkloadHandle {
    GeneratorSpec {
        name: "chase".into(),
        summary: "pointer chase through a 64 MiB permutation (latency-bound)".into(),
        pattern: Pattern::Chase,
        arrival: Arrival::ClosedLoop {
            mem_per_kinst: 33.0,
        },
        store_frac: 0.0,
        footprint_lines: 1 << 20,
        streams: 1,
    }
    .handle()
}

/// 90 % of accesses to 10 % of a 256 MiB footprint — cache-filtered
/// hot/cold skew.
pub fn hotspot() -> WorkloadHandle {
    GeneratorSpec {
        name: "hotspot".into(),
        summary: "90% of accesses to the hot 10% of 256 MiB".into(),
        pattern: Pattern::Hotspot {
            hot_frac: 0.1,
            hot_prob: 0.9,
        },
        arrival: Arrival::ClosedLoop {
            mem_per_kinst: 25.0,
        },
        store_frac: 0.3,
        footprint_lines: 1 << 22,
        streams: 1,
    }
    .handle()
}

/// Zipfian popularity with `theta = theta_pct / 100` (named `zipf<pct>`, so
/// `zipf80` is θ = 0.8). Any `zipf<N>` resolves dynamically through the
/// registry.
pub fn zipf(theta_pct: u32) -> WorkloadHandle {
    GeneratorSpec {
        name: format!("zipf{theta_pct}"),
        summary: format!(
            "zipfian line popularity, theta = {:.2}, over 128 MiB",
            f64::from(theta_pct) / 100.0
        ),
        pattern: Pattern::Zipf {
            theta: f64::from(theta_pct) / 100.0,
        },
        arrival: Arrival::ClosedLoop {
            mem_per_kinst: 25.0,
        },
        store_frac: 0.25,
        footprint_lines: 1 << 21,
        streams: 1,
    }
    .handle()
}

/// Read/write-ratio sweep point: uniform-random traffic with
/// `write_pct` % stores (named `rw<pct>`; any `rw<N>` with N ≤ 100
/// resolves dynamically through the registry).
pub fn rw(write_pct: u32) -> WorkloadHandle {
    assert!(write_pct <= 100, "write percentage must be ≤ 100");
    GeneratorSpec {
        name: format!("rw{write_pct}"),
        summary: format!("uniform-random with {write_pct}% stores (write-ratio sweep)"),
        pattern: Pattern::Random,
        arrival: Arrival::ClosedLoop {
            mem_per_kinst: 25.0,
        },
        store_frac: f64::from(write_pct) / 100.0,
        footprint_lines: 1 << 21,
        streams: 1,
    }
    .handle()
}

/// Open-loop arrival mode: exactly `per_kinst` accesses per
/// kilo-instruction at a fixed gap (named `open<rate>`). `per_kinst` must
/// divide 1000 evenly so the gap quantization cannot make the actual rate
/// diverge from the rate the name advertises; the registry's dynamic
/// `open<N>` form enforces the same domain.
pub fn open_loop(per_kinst: u32) -> WorkloadHandle {
    assert!(
        (1..=1000).contains(&per_kinst) && 1000 % per_kinst == 0,
        "open-loop rate must be a divisor of 1000 accesses/kinst, got {per_kinst}"
    );
    let gap_insts = 1000 / per_kinst - 1;
    GeneratorSpec {
        name: format!("open{per_kinst}"),
        summary: format!("open-loop fixed arrivals: {per_kinst} accesses per kinst"),
        pattern: Pattern::Random,
        arrival: Arrival::OpenLoop { gap_insts },
        store_frac: 0.25,
        footprint_lines: 1 << 21,
        streams: 1,
    }
    .handle()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env(core: usize, seed: u64) -> WorkloadEnv {
        WorkloadEnv {
            core,
            cores: 8,
            seed,
        }
    }

    fn collect_lines(h: &WorkloadHandle, n: usize) -> Vec<u64> {
        let mut wl = h.build(&env(0, 7));
        let mut lines = Vec::with_capacity(n);
        while lines.len() < n {
            if let Op::Load(a) | Op::Store(a) = wl.next_access() {
                lines.push(a / 64);
            }
        }
        lines
    }

    #[test]
    fn instances_are_deterministic_per_env() {
        for h in [stream(), random(), chase(), hotspot(), zipf(80), rw(50)] {
            let (mut a, mut b) = (h.build(&env(2, 9)), h.build(&env(2, 9)));
            for _ in 0..2_000 {
                assert_eq!(a.next_access(), b.next_access(), "{}", h.name());
            }
            // A different core diverges (per-core Stream seeding).
            let mut c = h.build(&env(3, 9));
            let diverged = (0..2_000).any(|_| a.next_access() != c.next_access());
            assert!(diverged, "{}: cores share a stream", h.name());
        }
    }

    #[test]
    fn stream_is_sequential_and_random_is_not() {
        let seq = |lines: &[u64]| {
            lines.windows(2).filter(|w| w[1] == w[0] + 1).count() as f64 / (lines.len() - 1) as f64
        };
        // 4 interleaved stride-1 streams still land far above random.
        assert!(seq(&collect_lines(&stream(), 4_000)) > 0.15);
        assert!(seq(&collect_lines(&random(), 4_000)) < 0.01);
    }

    #[test]
    fn chase_never_repeats_within_a_lap() {
        let lines = collect_lines(&chase(), 20_000);
        let distinct: std::collections::HashSet<_> = lines.iter().collect();
        // A permutation walk: 20k accesses over a 1M-line footprint must
        // all be distinct (a random function would collide long before).
        assert_eq!(distinct.len(), lines.len());
    }

    #[test]
    fn hotspot_skews_accesses_into_the_hot_region() {
        let lines = collect_lines(&hotspot(), 20_000);
        let footprint = 1u64 << 22;
        let hot = footprint / 10;
        let in_hot = lines.iter().filter(|&&l| l < hot).count() as f64;
        let frac = in_hot / lines.len() as f64;
        assert!((frac - 0.9).abs() < 0.02, "hot fraction {frac}");
    }

    #[test]
    fn zipf_concentrates_mass_more_at_higher_theta() {
        let top_share = |pct: u32| {
            let lines = collect_lines(&zipf(pct), 30_000);
            let mut counts = std::collections::HashMap::new();
            for l in lines {
                *counts.entry(l).or_insert(0u64) += 1;
            }
            let mut freqs: Vec<u64> = counts.into_values().collect();
            freqs.sort_unstable_by(|a, b| b.cmp(a));
            freqs.iter().take(100).sum::<u64>() as f64 / 30_000.0
        };
        assert!(top_share(99) > top_share(40) + 0.05);
    }

    #[test]
    fn rw_ratio_tracks_the_requested_percentage() {
        let mut wl = rw(70).build(&env(0, 3));
        let (mut loads, mut stores) = (0u64, 0u64);
        for _ in 0..60_000 {
            match wl.next_access() {
                Op::Load(_) => loads += 1,
                Op::Store(_) => stores += 1,
                Op::Compute(_) => {}
            }
        }
        let frac = stores as f64 / (loads + stores) as f64;
        assert!((frac - 0.7).abs() < 0.02, "store frac {frac}");
    }

    #[test]
    fn open_loop_paces_accesses_at_a_fixed_gap() {
        let mut wl = open_loop(25).build(&env(0, 3));
        for _ in 0..200 {
            match wl.next_access() {
                Op::Compute(gap) => assert_eq!(gap, 39),
                Op::Load(_) | Op::Store(_) => {}
            }
        }
        assert!((open_loop(25).build(&env(0, 3)).profile().mem_per_kinst - 25.0).abs() < 1e-9);
    }

    #[test]
    fn gaps_never_repeat_back_to_back() {
        // The trait contract trace capture relies on: at most one Compute
        // between memory events.
        for h in [
            stream(),
            random(),
            chase(),
            hotspot(),
            zipf(80),
            open_loop(10),
        ] {
            let mut wl = h.build(&env(0, 5));
            let mut last_was_gap = false;
            for _ in 0..20_000 {
                let gap = matches!(wl.next_access(), Op::Compute(_));
                assert!(!(gap && last_was_gap), "{}: double gap", h.name());
                last_was_gap = gap;
            }
        }
    }
}
