//! Dumps a generator to the trace format on stdout — the writer half of the
//! trace round-trip, and the tool that (re)generates the embedded
//! `data/demo.trace`:
//!
//! ```sh
//! cargo run -p hira-workload --example dump_trace -- random 128 \
//!     > crates/workload/data/demo.trace
//! ```

use hira_workload::{workload, Trace, WorkloadEnv};

fn main() {
    let mut args = std::env::args().skip(1);
    let name = args.next().unwrap_or_else(|| "random".to_owned());
    let records: usize = args.next().and_then(|n| n.parse().ok()).unwrap_or(128);
    let mut wl = workload(&name).build(&WorkloadEnv {
        core: 0,
        cores: 1,
        seed: 0x5157,
    });
    let trace = Trace::capture(wl.as_mut(), records);
    trace
        .write_to(std::io::stdout().lock())
        .expect("stdout write");
}
