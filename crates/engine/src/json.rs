//! A minimal hand-rolled JSON writer.
//!
//! The engine serializes run results without external dependencies, and the
//! output doubles as the determinism fingerprint: the canonical form must be
//! byte-identical across thread counts and runs, so formatting is fully
//! specified here (shortest round-trip `f64` rendering, no whitespace,
//! insertion-ordered objects).

use std::fmt::Write as _;

/// Appends the JSON string literal for `s` (quotes included).
pub fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends the JSON rendering of `v`: shortest round-trip decimal for finite
/// values, `null` for NaN/infinities (JSON has no encoding for them).
pub fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

/// Appends an object from pre-rendered `(key, raw_json_value)` entries.
pub fn write_object<'a>(out: &mut String, entries: impl IntoIterator<Item = (&'a str, String)>) {
    out.push('{');
    for (i, (k, v)) in entries.into_iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_str(out, k);
        out.push(':');
        out.push_str(&v);
    }
    out.push('}');
}

#[cfg(test)]
mod tests {
    use super::*;

    fn str_of(s: &str) -> String {
        let mut out = String::new();
        write_str(&mut out, s);
        out
    }

    #[test]
    fn strings_escape_specials() {
        assert_eq!(str_of("plain"), "\"plain\"");
        assert_eq!(str_of("a\"b"), "\"a\\\"b\"");
        assert_eq!(str_of("a\\b"), "\"a\\\\b\"");
        assert_eq!(str_of("a\nb\tc"), "\"a\\nb\\tc\"");
        assert_eq!(str_of("\u{1}"), "\"\\u0001\"");
        assert_eq!(str_of("µ-ops"), "\"µ-ops\"");
    }

    #[test]
    fn floats_render_shortest_and_nonfinite_as_null() {
        let f = |v: f64| {
            let mut out = String::new();
            write_f64(&mut out, v);
            out
        };
        assert_eq!(f(1.5), "1.5");
        assert_eq!(f(3.0), "3");
        assert_eq!(f(-0.25), "-0.25");
        assert_eq!(f(f64::NAN), "null");
        assert_eq!(f(f64::INFINITY), "null");
    }

    #[test]
    fn objects_preserve_entry_order() {
        let mut out = String::new();
        write_object(
            &mut out,
            [("b", "1".to_string()), ("a", "\"x\"".to_string())],
        );
        assert_eq!(out, "{\"b\":1,\"a\":\"x\"}");
    }
}
