//! A minimal hand-rolled JSON writer and reader.
//!
//! The engine serializes run results without external dependencies, and the
//! output doubles as the determinism fingerprint: the canonical form must be
//! byte-identical across thread counts and runs, so formatting is fully
//! specified here (shortest round-trip `f64` rendering, no whitespace,
//! insertion-ordered objects).
//!
//! The reader ([`parse`] → [`Value`]) is the matching recursive-descent
//! parser: it accepts anything this writer emits (and general JSON), keeps
//! object entries in document order, and round-trips every finite `f64` the
//! writer renders bit-exactly (Rust's shortest-decimal `Display` parses
//! back to the same bits). The sweep store's JSONL shards and the
//! `hira serve` wire protocol are both read through it.

use std::fmt;
use std::fmt::Write as _;

/// Appends the JSON string literal for `s` (quotes included).
pub fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends the JSON rendering of `v`: shortest round-trip decimal for finite
/// values, `null` for NaN/infinities (JSON has no encoding for them).
pub fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

/// Appends an object from pre-rendered `(key, raw_json_value)` entries.
pub fn write_object<'a>(out: &mut String, entries: impl IntoIterator<Item = (&'a str, String)>) {
    out.push('{');
    for (i, (k, v)) in entries.into_iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_str(out, k);
        out.push(':');
        out.push_str(&v);
    }
    out.push('}');
}

/// A parsed JSON value. Objects keep their entries in document order (the
/// writer is insertion-ordered, so write→parse→write is the identity on
/// entry order).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null` (also what the writer emits for NaN/infinite floats).
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number, held as `f64`.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, entries in document order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Object member lookup (first match); `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The numeric payload as an exact non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(v) if *v >= 0.0 && v.fract() == 0.0 && *v <= u64::MAX as f64 => {
                Some(*v as u64)
            }
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The entry list, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(entries) => Some(entries),
            _ => None,
        }
    }

    /// True when the value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

/// A parse failure: what went wrong and the byte offset it was noticed at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description.
    pub msg: &'static str,
    /// Byte offset into the input.
    pub offset: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.offset, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// Parses one complete JSON document; trailing non-whitespace is an error.
///
/// # Errors
///
/// Returns a [`ParseError`] with the byte offset of the first offending
/// input on malformed documents (including truncated ones — the store's
/// corrupt-tail recovery relies on truncation being an *error*, never a
/// silently short value).
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

/// Maximum nesting depth accepted by [`parse`] (guards the call stack).
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &'static str) -> ParseError {
        ParseError {
            msg,
            offset: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8, msg: &'static str) -> Result<(), ParseError> {
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(msg))
        }
    }

    fn literal(&mut self, lit: &'static str, v: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, ParseError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.bytes.get(self.pos) {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, ParseError> {
        self.eat(b'[', "expected `[`")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, ParseError> {
        self.eat(b'{', "expected `{`")?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(Value::Obj(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "expected `:`")?;
            self.skip_ws();
            entries.push((key, self.value(depth + 1)?));
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(entries));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u16, ParseError> {
        let mut v: u16 = 0;
        for _ in 0..4 {
            let d = match self.bytes.get(self.pos) {
                Some(c @ b'0'..=b'9') => c - b'0',
                Some(c @ b'a'..=b'f') => c - b'a' + 10,
                Some(c @ b'A'..=b'F') => c - b'A' + 10,
                _ => return Err(self.err("invalid \\u escape")),
            };
            v = v << 4 | u16::from(d);
            self.pos += 1;
        }
        Ok(v)
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.eat(b'"', "expected string")?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: a second \uXXXX must follow.
                                if self.bytes.get(self.pos) != Some(&b'\\')
                                    || self.bytes.get(self.pos + 1) != Some(&b'u')
                                {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                self.pos += 2;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let cp = 0x10000
                                    + ((u32::from(hi) - 0xD800) << 10)
                                    + (u32::from(lo) - 0xDC00);
                                char::from_u32(cp).ok_or_else(|| self.err("invalid code point"))?
                            } else if (0xDC00..0xE000).contains(&hi) {
                                return Err(self.err("unpaired surrogate"));
                            } else {
                                char::from_u32(u32::from(hi))
                                    .ok_or_else(|| self.err("invalid code point"))?
                            };
                            out.push(c);
                            continue; // hex4 advanced past the escape already
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(&c) if c < 0x20 => return Err(self.err("control character in string")),
                Some(_) => {
                    // Multi-byte UTF-8 is copied through as-is: the input is
                    // a &str, so byte boundaries are already valid.
                    let start = self.pos;
                    self.pos += 1;
                    while self
                        .bytes
                        .get(self.pos)
                        .is_some_and(|&b| b >= 0x80 && b & 0xC0 == 0x80)
                    {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .expect("input is valid UTF-8"),
                    );
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII span");
        text.parse::<f64>().map(Value::Num).map_err(|_| ParseError {
            msg: "invalid number",
            offset: start,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn str_of(s: &str) -> String {
        let mut out = String::new();
        write_str(&mut out, s);
        out
    }

    #[test]
    fn strings_escape_specials() {
        assert_eq!(str_of("plain"), "\"plain\"");
        assert_eq!(str_of("a\"b"), "\"a\\\"b\"");
        assert_eq!(str_of("a\\b"), "\"a\\\\b\"");
        assert_eq!(str_of("a\nb\tc"), "\"a\\nb\\tc\"");
        assert_eq!(str_of("\u{1}"), "\"\\u0001\"");
        assert_eq!(str_of("µ-ops"), "\"µ-ops\"");
    }

    #[test]
    fn floats_render_shortest_and_nonfinite_as_null() {
        let f = |v: f64| {
            let mut out = String::new();
            write_f64(&mut out, v);
            out
        };
        assert_eq!(f(1.5), "1.5");
        assert_eq!(f(3.0), "3");
        assert_eq!(f(-0.25), "-0.25");
        assert_eq!(f(f64::NAN), "null");
        assert_eq!(f(f64::INFINITY), "null");
    }

    #[test]
    fn objects_preserve_entry_order() {
        let mut out = String::new();
        write_object(
            &mut out,
            [("b", "1".to_string()), ("a", "\"x\"".to_string())],
        );
        assert_eq!(out, "{\"b\":1,\"a\":\"x\"}");
    }

    #[test]
    fn parse_reads_scalars_arrays_and_ordered_objects() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse(" true ").unwrap(), Value::Bool(true));
        assert_eq!(parse("-2.5e2").unwrap(), Value::Num(-250.0));
        assert_eq!(parse("\"a\\nb\"").unwrap(), Value::Str("a\nb".into()));
        let v = parse(r#"{"b":[1,2,{"x":null}],"a":"y"}"#).unwrap();
        let entries = v.as_obj().unwrap();
        assert_eq!(entries[0].0, "b");
        assert_eq!(entries[1].0, "a");
        assert_eq!(v.get("a").unwrap().as_str(), Some("y"));
        let arr = v.get("b").unwrap().as_arr().unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert!(arr[2].get("x").unwrap().is_null());
        assert_eq!(parse("[]").unwrap(), Value::Arr(vec![]));
        assert_eq!(parse("{}").unwrap(), Value::Obj(vec![]));
    }

    #[test]
    fn parse_handles_escapes_and_unicode() {
        assert_eq!(parse(r#""A\t\"\\µ""#).unwrap().as_str(), Some("A\t\"\\µ"));
        // Surrogate pair → astral code point.
        assert_eq!(parse(r#""😀""#).unwrap().as_str(), Some("\u{1F600}"));
        // Raw multi-byte UTF-8 passes through.
        assert_eq!(parse("\"µ-ops\"").unwrap().as_str(), Some("µ-ops"));
        assert!(parse(r#""\ud83d""#).is_err(), "unpaired surrogate");
    }

    #[test]
    fn parse_rejects_malformed_documents_with_offsets() {
        for bad in [
            "",
            "{",
            "{\"a\":",
            "{\"a\":1,",
            "[1,2",
            "\"unterminated",
            "nul",
            "1 2",
            "{\"a\" 1}",
            "{a:1}",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} must not parse");
        }
        let e = parse("[1,]").unwrap_err();
        assert!(e.offset > 0);
        assert!(e.to_string().contains("byte"));
    }

    #[test]
    fn writer_output_round_trips_through_parse() {
        let mut inner = String::new();
        write_object(
            &mut inner,
            [
                ("name", str_of("µ \"quoted\"\n")),
                ("v", "0.30000000000000004".to_string()),
                ("list", "[1,null,true]".to_string()),
            ],
        );
        let v = parse(&inner).unwrap();
        assert_eq!(v.get("name").unwrap().as_str(), Some("µ \"quoted\"\n"));
        // Shortest-decimal rendering parses back to the exact same bits.
        assert_eq!(
            v.get("v").unwrap().as_f64().unwrap().to_bits(),
            0.30000000000000004f64.to_bits()
        );
    }

    #[test]
    fn floats_round_trip_bit_exactly_through_write_and_parse() {
        for v in [
            1.0,
            -0.25,
            0.1 + 0.2,
            1e-300,
            123456789.12345679,
            f64::MIN_POSITIVE,
            f64::MAX,
        ] {
            let mut out = String::new();
            write_f64(&mut out, v);
            let back = parse(&out).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), v.to_bits(), "{v}");
        }
    }
}
