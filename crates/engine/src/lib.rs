//! # hira-engine — deterministic parallel experiment orchestration
//!
//! The paper's evaluation is a large sweep — 125 8-core mixes ×
//! {NoRefresh, Baseline, HiRA-N} × PARA modes × channel/rank scaling — and
//! every figure of the reproduction is some slice of that space. This crate
//! is the shared scheduling/result layer all of `hira-bench` runs on:
//!
//! * [`Sweep`] / [`ScenarioKey`] — a declarative experiment description:
//!   axes are added with cartesian-product expansion ([`Sweep::axis`]) or
//!   point-dependent expansion ([`Sweep::expand`]), and every point carries
//!   a deterministic seed derived from its coordinates ([`derive_seed`]),
//! * [`Executor`] — a std-only multi-threaded executor
//!   (`std::thread::scope` + a shared atomic work queue; worker count from
//!   `HIRA_THREADS` or the machine's available parallelism) whose results
//!   are **bit-identical for any thread count**,
//! * [`RunSet`] / [`RunRecord`] — the structured result store with keyed
//!   lookup, axis aggregation, a tabular pretty-printer, a canonical JSON
//!   form (the determinism fingerprint) and a `BENCH_<sweep>.json` emitter
//!   for the perf trajectory.
//!
//! ## Example
//!
//! ```rust
//! use hira_engine::{metric, Executor, Sweep};
//!
//! // Two axes, cartesian-expanded into four scenarios.
//! let sweep = Sweep::new("demo")
//!     .axis("n", [("1", 1u32), ("2", 2)], |_, &n| n)
//!     .axis("scale", [("x10", 10u32), ("x100", 100)], |&n, &s| n * s);
//! let run = Executor::with_threads(2)
//!     .run(&sweep, |sc| vec![metric("value", f64::from(*sc.params))]);
//! assert_eq!(run.value(&[("n", "2"), ("scale", "x100")], "value"), 200.0);
//! // The canonical form is byte-identical regardless of thread count.
//! assert_eq!(
//!     run.canonical_json(),
//!     Executor::with_threads(1)
//!         .run(&sweep, |sc| vec![metric("value", f64::from(*sc.params))])
//!         .canonical_json(),
//! );
//! ```

pub mod executor;
pub mod json;
pub mod pathkey;
pub mod record;
pub mod scenario;

pub use executor::{Executor, PointRun, RunObserver};
pub use pathkey::{sanitize_component, sanitize_key, suffix_path};
pub use record::{flabel, metric, Metric, PointTelemetry, RunRecord, RunSet};
pub use scenario::{derive_seed, Scenario, ScenarioKey, Sweep, DEFAULT_BASE_SEED};
