//! The structured result store: metrics, run records and run sets.
//!
//! Executor tasks return [`Metric`]s; the executor stamps them with their
//! scenario key and wall time into [`RunRecord`]s and bundles a sweep's
//! records into a [`RunSet`]. The run set offers:
//!
//! * keyed lookup ([`RunSet::get`] / [`RunSet::value`]) and axis aggregation
//!   ([`RunSet::mean_over`]) for the figure binaries,
//! * a canonical JSON form ([`RunSet::canonical_json`]) that excludes
//!   timing/thread metadata and is byte-identical across thread counts —
//!   the determinism fingerprint,
//! * a `BENCH_<sweep>.json` emitter ([`RunSet::write_bench_json`]) carrying
//!   wall-clock data for the perf trajectory, plus the env-gated
//!   [`RunSet::emit_if_requested`] convenience,
//! * a tabular pretty-printer ([`RunSet::table`]).

use crate::json;
use crate::scenario::ScenarioKey;
use std::io;
use std::path::{Path, PathBuf};

/// One named measurement produced by a task.
#[derive(Debug, Clone, PartialEq)]
pub struct Metric {
    /// Metric name (e.g. `"ws"`, `"coverage_mean"`).
    pub name: String,
    /// Measured value.
    pub value: f64,
}

/// Shorthand constructor for a [`Metric`].
pub fn metric(name: impl Into<String>, value: f64) -> Metric {
    Metric {
        name: name.into(),
        value,
    }
}

/// One measurement of one scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct RunRecord {
    /// The scenario the measurement belongs to.
    pub key: ScenarioKey,
    /// Metric name.
    pub metric: String,
    /// Metric value.
    pub value: f64,
    /// Wall time of the scenario's task in milliseconds. Excluded from the
    /// canonical serialization — it varies run to run by nature.
    pub wall_ms: f64,
}

/// All records of one executed sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct RunSet {
    /// The sweep's name.
    pub sweep: String,
    /// Worker threads the executor used (metadata, not part of the results).
    pub threads: usize,
    /// Total wall time of the sweep in milliseconds.
    pub wall_ms: f64,
    /// Records in point order, metrics in task-emission order.
    pub records: Vec<RunRecord>,
}

impl RunSet {
    /// The first record matching every filter and the metric name.
    pub fn get(&self, filters: &[(&str, &str)], metric: &str) -> Option<f64> {
        self.records
            .iter()
            .find(|r| r.metric == metric && r.key.matches(filters))
            .map(|r| r.value)
    }

    /// [`RunSet::get`] that panics with a descriptive message on a miss —
    /// for figure binaries where an absent point is a programming error.
    ///
    /// # Panics
    ///
    /// Panics if no record matches.
    pub fn value(&self, filters: &[(&str, &str)], metric: &str) -> f64 {
        self.get(filters, metric).unwrap_or_else(|| {
            panic!(
                "sweep `{}` has no record for {filters:?} metric `{metric}`",
                self.sweep
            )
        })
    }

    /// Collapses one axis by arithmetic mean: records of `metric` whose keys
    /// differ only in `axis` are grouped (first-seen order) and averaged.
    pub fn mean_over(&self, axis: &str, metric: &str) -> Vec<(ScenarioKey, f64)> {
        let mut groups: Vec<(ScenarioKey, f64, usize)> = Vec::new();
        for r in self.records.iter().filter(|r| r.metric == metric) {
            let k = r.key.without(axis);
            match groups.iter_mut().find(|(g, _, _)| *g == k) {
                Some((_, sum, n)) => {
                    *sum += r.value;
                    *n += 1;
                }
                None => groups.push((k, r.value, 1)),
            }
        }
        groups
            .into_iter()
            .map(|(k, sum, n)| (k, sum / n as f64))
            .collect()
    }

    fn key_json(key: &ScenarioKey) -> String {
        let mut out = String::new();
        json::write_object(
            &mut out,
            key.axes().map(|(a, v)| {
                let mut s = String::new();
                json::write_str(&mut s, v);
                (a, s)
            }),
        );
        out
    }

    fn record_json(r: &RunRecord, with_wall: bool) -> String {
        let mut value = String::new();
        json::write_f64(&mut value, r.value);
        let mut m = String::new();
        json::write_str(&mut m, &r.metric);
        let mut entries = vec![
            ("key", Self::key_json(&r.key)),
            ("metric", m),
            ("value", value),
        ];
        if with_wall {
            let mut w = String::new();
            json::write_f64(&mut w, r.wall_ms);
            entries.push(("wall_ms", w));
        }
        let mut out = String::new();
        json::write_object(&mut out, entries);
        out
    }

    fn json(&self, with_wall: bool) -> String {
        let mut name = String::new();
        json::write_str(&mut name, &self.sweep);
        let mut records = String::from("[");
        for (i, r) in self.records.iter().enumerate() {
            if i > 0 {
                records.push(',');
            }
            records.push_str(&Self::record_json(r, with_wall));
        }
        records.push(']');
        let mut entries = vec![("sweep", name)];
        if with_wall {
            entries.push(("threads", self.threads.to_string()));
            let mut w = String::new();
            json::write_f64(&mut w, self.wall_ms);
            entries.push(("wall_ms", w));
        }
        entries.push(("records", records));
        let mut out = String::new();
        json::write_object(&mut out, entries);
        out.push('\n');
        out
    }

    /// The canonical serialization: sweep name + records without any timing
    /// or thread metadata. Byte-identical across thread counts and runs.
    pub fn canonical_json(&self) -> String {
        self.json(false)
    }

    /// The full serialization with per-record and total wall times plus the
    /// thread count — the `BENCH_*.json` payload.
    pub fn bench_json(&self) -> String {
        self.json(true)
    }

    /// Writes `BENCH_<sweep>.json` into `dir` and returns its path.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_bench_json(&self, dir: &Path) -> io::Result<PathBuf> {
        let path = dir.join(format!("BENCH_{}.json", self.sweep));
        std::fs::write(&path, self.bench_json())?;
        Ok(path)
    }

    /// Writes the `BENCH_*.json` into `$HIRA_BENCH_DIR` when that variable
    /// is set; returns the path written, if any. Figure binaries call this
    /// unconditionally so any sweep can join the perf trajectory on demand.
    pub fn emit_if_requested(&self) -> Option<PathBuf> {
        let dir = std::env::var_os("HIRA_BENCH_DIR")?;
        match self.write_bench_json(Path::new(&dir)) {
            Ok(path) => Some(path),
            Err(e) => {
                eprintln!("warning: could not write BENCH_{}.json: {e}", self.sweep);
                None
            }
        }
    }

    /// Renders the records as an aligned text table (axes, metric, value,
    /// wall time).
    pub fn table(&self) -> String {
        let mut axes: Vec<&str> = Vec::new();
        for r in &self.records {
            for (a, _) in r.key.axes() {
                if !axes.contains(&a) {
                    axes.push(a);
                }
            }
        }
        let mut rows: Vec<Vec<String>> = Vec::with_capacity(self.records.len() + 1);
        let mut header: Vec<String> = axes.iter().map(|a| (*a).to_string()).collect();
        header.extend(["metric".to_string(), "value".to_string(), "ms".to_string()]);
        rows.push(header);
        for r in &self.records {
            let mut row: Vec<String> = axes
                .iter()
                .map(|a| r.key.get(a).unwrap_or("-").to_string())
                .collect();
            row.push(r.metric.clone());
            row.push(format!("{:.6}", r.value));
            row.push(format!("{:.1}", r.wall_ms));
            rows.push(row);
        }
        let cols = rows[0].len();
        let widths: Vec<usize> = (0..cols)
            .map(|c| rows.iter().map(|r| r[c].len()).max().unwrap_or(0))
            .collect();
        let mut out = String::new();
        for (i, row) in rows.iter().enumerate() {
            for (c, cell) in row.iter().enumerate() {
                if c > 0 {
                    out.push_str("  ");
                }
                out.push_str(&format!("{cell:>width$}", width = widths[c]));
            }
            out.push('\n');
            if i == 0 {
                let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
                out.push_str(&"-".repeat(total));
                out.push('\n');
            }
        }
        out
    }
}

/// Formats an axis label for a float value: integral values render without
/// a fractional part (`8` not `8.0`), so labels match `to_string()` lookups.
pub fn flabel(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RunSet {
        let k = |m: &str| ScenarioKey::root().with("scheme", "B").with("mix", m);
        RunSet {
            sweep: "demo".into(),
            threads: 2,
            wall_ms: 12.5,
            records: vec![
                RunRecord {
                    key: k("0"),
                    metric: "ws".into(),
                    value: 2.0,
                    wall_ms: 3.0,
                },
                RunRecord {
                    key: k("1"),
                    metric: "ws".into(),
                    value: 4.0,
                    wall_ms: 4.0,
                },
                RunRecord {
                    key: k("0"),
                    metric: "ipc".into(),
                    value: 1.0,
                    wall_ms: 3.0,
                },
            ],
        }
    }

    #[test]
    fn lookup_by_filters_and_metric() {
        let rs = sample();
        assert_eq!(rs.get(&[("mix", "1")], "ws"), Some(4.0));
        assert_eq!(rs.get(&[("mix", "2")], "ws"), None);
        assert_eq!(rs.value(&[("scheme", "B"), ("mix", "0")], "ipc"), 1.0);
    }

    #[test]
    #[should_panic(expected = "no record")]
    fn value_panics_on_miss() {
        sample().value(&[("mix", "9")], "ws");
    }

    #[test]
    fn mean_over_collapses_one_axis() {
        let rs = sample();
        let means = rs.mean_over("mix", "ws");
        assert_eq!(means.len(), 1);
        assert_eq!(means[0].0.to_string(), "scheme=B");
        assert_eq!(means[0].1, 3.0);
    }

    #[test]
    fn canonical_json_is_wall_free_and_ordered() {
        let rs = sample();
        let json = rs.canonical_json();
        assert!(json.starts_with("{\"sweep\":\"demo\",\"records\":["));
        assert!(json
            .contains("{\"key\":{\"scheme\":\"B\",\"mix\":\"0\"},\"metric\":\"ws\",\"value\":2}"));
        assert!(!json.contains("wall"));
        assert!(!json.contains("threads"));
        // Identical results at different thread counts serialize identically.
        let mut other = rs.clone();
        other.threads = 8;
        other.wall_ms = 99.0;
        other.records[0].wall_ms = 1.0;
        assert_eq!(json, other.canonical_json());
        assert_ne!(rs.bench_json(), other.bench_json());
    }

    #[test]
    fn bench_json_carries_timing_metadata() {
        let json = sample().bench_json();
        assert!(json.contains("\"threads\":2"));
        assert!(json.contains("\"wall_ms\""));
    }

    #[test]
    fn bench_json_roundtrips_to_disk() {
        let dir = std::env::temp_dir().join("hira-engine-test-emit");
        std::fs::create_dir_all(&dir).unwrap();
        let path = sample().write_bench_json(&dir).unwrap();
        assert!(path.ends_with("BENCH_demo.json"));
        let body = std::fs::read_to_string(&path).unwrap();
        assert_eq!(body, sample().bench_json());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn table_lists_axes_and_values() {
        let table = sample().table();
        assert!(table.contains("scheme"));
        assert!(table.contains("mix"));
        assert!(table.contains("ws"));
        assert!(table.contains("4.000000"));
    }

    #[test]
    fn float_labels_drop_trailing_zero() {
        assert_eq!(flabel(8.0), "8");
        assert_eq!(flabel(0.5), "0.5");
        assert_eq!(flabel(-2.0), "-2");
    }
}
