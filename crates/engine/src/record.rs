//! The structured result store: metrics, run records and run sets.
//!
//! Executor tasks return [`Metric`]s; the executor stamps them with their
//! scenario key and wall time into [`RunRecord`]s and bundles a sweep's
//! records into a [`RunSet`]. The run set offers:
//!
//! * keyed lookup ([`RunSet::get`] / [`RunSet::value`]) and axis aggregation
//!   ([`RunSet::mean_over`]) for the figure binaries,
//! * a canonical JSON form ([`RunSet::canonical_json`]) that excludes
//!   timing/thread metadata and is byte-identical across thread counts —
//!   the determinism fingerprint,
//! * a `BENCH_<sweep>.json` emitter ([`RunSet::write_bench_json`]) carrying
//!   wall-clock data for the perf trajectory, plus the env-gated
//!   [`RunSet::emit_if_requested`] convenience,
//! * a tabular pretty-printer ([`RunSet::table`]).

use crate::json;
use crate::scenario::ScenarioKey;
use std::io;
use std::path::{Path, PathBuf};

/// One named measurement produced by a task.
#[derive(Debug, Clone, PartialEq)]
pub struct Metric {
    /// Metric name (e.g. `"ws"`, `"coverage_mean"`).
    pub name: String,
    /// Measured value.
    pub value: f64,
}

/// Shorthand constructor for a [`Metric`].
pub fn metric(name: impl Into<String>, value: f64) -> Metric {
    Metric {
        name: name.into(),
        value,
    }
}

/// Per-point run telemetry a task may report alongside its metrics: how
/// much work the simulation kernel did, not what it measured. Like
/// `wall_ms`, telemetry is excluded from the canonical serialization — it
/// describes the execution, not the result.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PointTelemetry {
    /// Kernel iterations processed (dense: cycles; event: wake events).
    pub events: u64,
    /// Peak combined read+write queue depth across channels.
    pub peak_queue: u64,
}

/// One measurement of one scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct RunRecord {
    /// The scenario the measurement belongs to.
    pub key: ScenarioKey,
    /// Metric name.
    pub metric: String,
    /// Metric value.
    pub value: f64,
    /// Wall time of the scenario's task in milliseconds. Excluded from the
    /// canonical serialization — it varies run to run by nature.
    pub wall_ms: f64,
    /// Run telemetry of the scenario's task, when the task reported any.
    /// Excluded from the canonical serialization alongside `wall_ms`.
    pub telemetry: Option<PointTelemetry>,
}

impl RunRecord {
    /// Kernel events per wall-clock second, when telemetry is present and
    /// the wall time is non-zero.
    pub fn events_per_sec(&self) -> Option<f64> {
        let t = self.telemetry?;
        if self.wall_ms > 0.0 {
            Some(t.events as f64 / (self.wall_ms / 1e3))
        } else {
            None
        }
    }
}

/// All records of one executed sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct RunSet {
    /// The sweep's name.
    pub sweep: String,
    /// Worker threads the executor used (metadata, not part of the results).
    pub threads: usize,
    /// Total wall time of the sweep in milliseconds.
    pub wall_ms: f64,
    /// Records in point order, metrics in task-emission order.
    pub records: Vec<RunRecord>,
}

impl RunSet {
    /// The first record matching every filter and the metric name.
    pub fn get(&self, filters: &[(&str, &str)], metric: &str) -> Option<f64> {
        self.records
            .iter()
            .find(|r| r.metric == metric && r.key.matches(filters))
            .map(|r| r.value)
    }

    /// [`RunSet::get`] that panics with a descriptive message on a miss —
    /// for figure binaries where an absent point is a programming error.
    ///
    /// # Panics
    ///
    /// Panics if no record matches.
    pub fn value(&self, filters: &[(&str, &str)], metric: &str) -> f64 {
        self.get(filters, metric).unwrap_or_else(|| {
            panic!(
                "sweep `{}` has no record for {filters:?} metric `{metric}`",
                self.sweep
            )
        })
    }

    /// Collapses one axis by arithmetic mean: records of `metric` whose keys
    /// differ only in `axis` are grouped (first-seen order) and averaged.
    pub fn mean_over(&self, axis: &str, metric: &str) -> Vec<(ScenarioKey, f64)> {
        let mut groups: Vec<(ScenarioKey, f64, usize)> = Vec::new();
        for r in self.records.iter().filter(|r| r.metric == metric) {
            let k = r.key.without(axis);
            match groups.iter_mut().find(|(g, _, _)| *g == k) {
                Some((_, sum, n)) => {
                    *sum += r.value;
                    *n += 1;
                }
                None => groups.push((k, r.value, 1)),
            }
        }
        groups
            .into_iter()
            .map(|(k, sum, n)| (k, sum / n as f64))
            .collect()
    }

    fn key_json(key: &ScenarioKey) -> String {
        let mut out = String::new();
        json::write_object(
            &mut out,
            key.axes().map(|(a, v)| {
                let mut s = String::new();
                json::write_str(&mut s, v);
                (a, s)
            }),
        );
        out
    }

    fn record_json(r: &RunRecord, with_wall: bool) -> String {
        let mut value = String::new();
        json::write_f64(&mut value, r.value);
        let mut m = String::new();
        json::write_str(&mut m, &r.metric);
        let mut entries = vec![
            ("key", Self::key_json(&r.key)),
            ("metric", m),
            ("value", value),
        ];
        if with_wall {
            let mut w = String::new();
            json::write_f64(&mut w, r.wall_ms);
            entries.push(("wall_ms", w));
            if let Some(t) = r.telemetry {
                entries.push(("events", t.events.to_string()));
                let mut eps = String::new();
                json::write_f64(&mut eps, r.events_per_sec().unwrap_or(0.0));
                entries.push(("events_per_sec", eps));
                entries.push(("peak_queue", t.peak_queue.to_string()));
            }
        }
        let mut out = String::new();
        json::write_object(&mut out, entries);
        out
    }

    fn json(&self, with_wall: bool) -> String {
        let mut name = String::new();
        json::write_str(&mut name, &self.sweep);
        let mut records = String::from("[");
        for (i, r) in self.records.iter().enumerate() {
            if i > 0 {
                records.push(',');
            }
            records.push_str(&Self::record_json(r, with_wall));
        }
        records.push(']');
        let mut entries = vec![("sweep", name)];
        if with_wall {
            entries.push(("threads", self.threads.to_string()));
            let mut w = String::new();
            json::write_f64(&mut w, self.wall_ms);
            entries.push(("wall_ms", w));
        }
        entries.push(("records", records));
        let mut out = String::new();
        json::write_object(&mut out, entries);
        out.push('\n');
        out
    }

    /// The canonical serialization: sweep name + records without any timing
    /// or thread metadata. Byte-identical across thread counts and runs.
    pub fn canonical_json(&self) -> String {
        self.json(false)
    }

    /// The full serialization with per-record and total wall times plus the
    /// thread count — the `BENCH_*.json` payload.
    pub fn bench_json(&self) -> String {
        self.json(true)
    }

    /// Writes `BENCH_<sweep>.json` into `dir` and returns its path.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_bench_json(&self, dir: &Path) -> io::Result<PathBuf> {
        let path = dir.join(format!("BENCH_{}.json", self.sweep));
        std::fs::write(&path, self.bench_json())?;
        Ok(path)
    }

    /// Writes the `BENCH_*.json` into `$HIRA_BENCH_DIR` when that variable
    /// is set; returns the path written, if any. Figure binaries call this
    /// unconditionally so any sweep can join the perf trajectory on demand.
    pub fn emit_if_requested(&self) -> Option<PathBuf> {
        let dir = std::env::var_os("HIRA_BENCH_DIR")?;
        match self.write_bench_json(Path::new(&dir)) {
            Ok(path) => Some(path),
            Err(e) => {
                eprintln!("warning: could not write BENCH_{}.json: {e}", self.sweep);
                None
            }
        }
    }

    /// Renders the records as an aligned text table (axes, metric, value,
    /// wall time).
    pub fn table(&self) -> String {
        let mut axes: Vec<&str> = Vec::new();
        for r in &self.records {
            for (a, _) in r.key.axes() {
                if !axes.contains(&a) {
                    axes.push(a);
                }
            }
        }
        let mut rows: Vec<Vec<String>> = Vec::with_capacity(self.records.len() + 1);
        let mut header: Vec<String> = axes.iter().map(|a| (*a).to_string()).collect();
        header.extend(["metric".to_string(), "value".to_string(), "ms".to_string()]);
        rows.push(header);
        for r in &self.records {
            let mut row: Vec<String> = axes
                .iter()
                .map(|a| r.key.get(a).unwrap_or("-").to_string())
                .collect();
            row.push(r.metric.clone());
            row.push(format!("{:.6}", r.value));
            row.push(format!("{:.1}", r.wall_ms));
            rows.push(row);
        }
        let cols = rows[0].len();
        let widths: Vec<usize> = (0..cols)
            .map(|c| rows.iter().map(|r| r[c].len()).max().unwrap_or(0))
            .collect();
        let mut out = String::new();
        for (i, row) in rows.iter().enumerate() {
            for (c, cell) in row.iter().enumerate() {
                if c > 0 {
                    out.push_str("  ");
                }
                out.push_str(&format!("{cell:>width$}", width = widths[c]));
            }
            out.push('\n');
            if i == 0 {
                let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
                out.push_str(&"-".repeat(total));
                out.push('\n');
            }
        }
        out
    }

    /// Renders one row of run telemetry per sweep point (first-seen key
    /// order): wall time, kernel events, events/sec, peak queue depth.
    /// A footer aggregates the table — total events, total wall,
    /// wall-weighted events/sec, max peak queue — so the table stays
    /// readable on 100+-point sweeps. Points whose tasks reported no
    /// telemetry are skipped; the empty string means no point reported any.
    pub fn telemetry_table(&self) -> String {
        let mut rows: Vec<Vec<String>> = Vec::new();
        let mut seen: Vec<&ScenarioKey> = Vec::new();
        let mut total_events: u64 = 0;
        let mut total_wall_ms: f64 = 0.0;
        let mut max_peak: u64 = 0;
        for r in &self.records {
            let Some(t) = r.telemetry else { continue };
            if seen.contains(&&r.key) {
                continue;
            }
            seen.push(&r.key);
            total_events += t.events;
            total_wall_ms += r.wall_ms;
            max_peak = max_peak.max(t.peak_queue);
            rows.push(vec![
                r.key.to_string(),
                format!("{:.1}", r.wall_ms),
                t.events.to_string(),
                match r.events_per_sec() {
                    Some(eps) => format!("{:.0}", eps),
                    None => "-".to_string(),
                },
                t.peak_queue.to_string(),
            ]);
        }
        if rows.is_empty() {
            return String::new();
        }
        let header: Vec<String> = ["point", "ms", "events", "events/s", "peak_q"]
            .iter()
            .map(|h| (*h).to_string())
            .collect();
        rows.insert(0, header);
        // Aggregate footer: the wall-weighted rate (total events over total
        // wall), not a mean of per-point rates, so long points dominate the
        // way they dominate the run.
        rows.push(vec![
            "total".to_string(),
            format!("{total_wall_ms:.1}"),
            total_events.to_string(),
            if total_wall_ms > 0.0 {
                format!("{:.0}", total_events as f64 / (total_wall_ms / 1e3))
            } else {
                "-".to_string()
            },
            max_peak.to_string(),
        ]);
        let cols = rows[0].len();
        let widths: Vec<usize> = (0..cols)
            .map(|c| rows.iter().map(|r| r[c].len()).max().unwrap_or(0))
            .collect();
        let mut out = String::new();
        for (i, row) in rows.iter().enumerate() {
            for (c, cell) in row.iter().enumerate() {
                if c > 0 {
                    out.push_str("  ");
                }
                out.push_str(&format!("{cell:>width$}", width = widths[c]));
            }
            out.push('\n');
            if i == 0 || i + 2 == rows.len() {
                let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
                out.push_str(&"-".repeat(total));
                out.push('\n');
            }
        }
        out
    }
}

/// Formats an axis label for a float value: integral values render without
/// a fractional part (`8` not `8.0`), so labels match `to_string()` lookups.
pub fn flabel(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RunSet {
        let k = |m: &str| ScenarioKey::root().with("scheme", "B").with("mix", m);
        RunSet {
            sweep: "demo".into(),
            threads: 2,
            wall_ms: 12.5,
            records: vec![
                RunRecord {
                    key: k("0"),
                    metric: "ws".into(),
                    value: 2.0,
                    wall_ms: 3.0,
                    telemetry: None,
                },
                RunRecord {
                    key: k("1"),
                    metric: "ws".into(),
                    value: 4.0,
                    wall_ms: 4.0,
                    telemetry: None,
                },
                RunRecord {
                    key: k("0"),
                    metric: "ipc".into(),
                    value: 1.0,
                    wall_ms: 3.0,
                    telemetry: None,
                },
            ],
        }
    }

    #[test]
    fn lookup_by_filters_and_metric() {
        let rs = sample();
        assert_eq!(rs.get(&[("mix", "1")], "ws"), Some(4.0));
        assert_eq!(rs.get(&[("mix", "2")], "ws"), None);
        assert_eq!(rs.value(&[("scheme", "B"), ("mix", "0")], "ipc"), 1.0);
    }

    #[test]
    #[should_panic(expected = "no record")]
    fn value_panics_on_miss() {
        sample().value(&[("mix", "9")], "ws");
    }

    #[test]
    fn mean_over_collapses_one_axis() {
        let rs = sample();
        let means = rs.mean_over("mix", "ws");
        assert_eq!(means.len(), 1);
        assert_eq!(means[0].0.to_string(), "scheme=B");
        assert_eq!(means[0].1, 3.0);
    }

    #[test]
    fn canonical_json_is_wall_free_and_ordered() {
        let rs = sample();
        let json = rs.canonical_json();
        assert!(json.starts_with("{\"sweep\":\"demo\",\"records\":["));
        assert!(json
            .contains("{\"key\":{\"scheme\":\"B\",\"mix\":\"0\"},\"metric\":\"ws\",\"value\":2}"));
        assert!(!json.contains("wall"));
        assert!(!json.contains("threads"));
        // Identical results at different thread counts serialize identically.
        let mut other = rs.clone();
        other.threads = 8;
        other.wall_ms = 99.0;
        other.records[0].wall_ms = 1.0;
        assert_eq!(json, other.canonical_json());
        assert_ne!(rs.bench_json(), other.bench_json());
    }

    #[test]
    fn bench_json_carries_timing_metadata() {
        let json = sample().bench_json();
        assert!(json.contains("\"threads\":2"));
        assert!(json.contains("\"wall_ms\""));
    }

    #[test]
    fn bench_json_roundtrips_to_disk() {
        let dir = std::env::temp_dir().join("hira-engine-test-emit");
        std::fs::create_dir_all(&dir).unwrap();
        let path = sample().write_bench_json(&dir).unwrap();
        assert!(path.ends_with("BENCH_demo.json"));
        let body = std::fs::read_to_string(&path).unwrap();
        assert_eq!(body, sample().bench_json());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn table_lists_axes_and_values() {
        let table = sample().table();
        assert!(table.contains("scheme"));
        assert!(table.contains("mix"));
        assert!(table.contains("ws"));
        assert!(table.contains("4.000000"));
    }

    #[test]
    fn telemetry_stays_out_of_canonical_json_but_lands_in_bench_json() {
        let mut rs = sample();
        let t = PointTelemetry {
            events: 5000,
            peak_queue: 12,
        };
        for r in &mut rs.records {
            r.telemetry = Some(t);
        }
        let canonical = rs.canonical_json();
        assert!(!canonical.contains("events"));
        assert!(!canonical.contains("peak_queue"));
        assert_eq!(canonical, sample().canonical_json());
        let bench = rs.bench_json();
        assert!(bench.contains("\"events\":5000"));
        assert!(bench.contains("\"peak_queue\":12"));
        assert!(bench.contains("\"events_per_sec\""));
        // 5000 events over 3 ms.
        let eps = rs.records[0].events_per_sec().unwrap();
        assert!((eps - 5000.0 / 3e-3).abs() < 1e-6);
    }

    #[test]
    fn events_per_sec_guards_zero_wall_time() {
        let mut rs = sample();
        rs.records[0].telemetry = Some(PointTelemetry {
            events: 10,
            peak_queue: 1,
        });
        rs.records[0].wall_ms = 0.0;
        assert_eq!(rs.records[0].events_per_sec(), None);
        // No telemetry at all ⇒ also None.
        assert_eq!(rs.records[1].events_per_sec(), None);
        // Zero-wall records still serialize (events_per_sec falls to 0).
        assert!(rs.bench_json().contains("\"events_per_sec\":0"));
    }

    #[test]
    fn telemetry_table_lists_one_row_per_point() {
        let mut rs = sample();
        assert_eq!(rs.telemetry_table(), "");
        for (i, r) in rs.records.iter_mut().enumerate() {
            r.telemetry = Some(PointTelemetry {
                events: 100 * (i as u64 + 1),
                peak_queue: i as u64,
            });
        }
        let table = rs.telemetry_table();
        // Two distinct keys (mix=0, mix=1) even though mix=0 has 2 records,
        // plus the aggregate footer under its own rule.
        assert_eq!(
            table.lines().count(),
            2 + 2 + 2,
            "header + rule + 2 rows + rule + footer"
        );
        assert!(table.contains("events/s"));
        assert!(table.contains("mix=0"));
        assert!(table.contains("mix=1"));
        // Footer: total events 100+200 over total wall 3+4 ms, max peak_q 1.
        let footer = table.lines().last().unwrap();
        assert!(footer.starts_with("total") || footer.trim_start().starts_with("total"));
        assert!(footer.contains("7.0"), "{footer}");
        assert!(footer.contains("300"), "{footer}");
        assert!(footer.contains("42857"), "{footer}");
        assert!(footer.trim_end().ends_with('1'), "{footer}");
    }

    #[test]
    fn float_labels_drop_trailing_zero() {
        assert_eq!(flabel(8.0), "8");
        assert_eq!(flabel(0.5), "0.5");
        assert_eq!(flabel(-2.0), "-2");
    }
}
