//! The multi-threaded sweep executor.
//!
//! Std-only: `std::thread::scope` workers pulling point indices from a
//! shared atomic queue (`AtomicUsize::fetch_add`), so an idle worker always
//! steals the next pending point regardless of how long its neighbours'
//! points run. Each point's result lands in its own pre-allocated slot and
//! the run set is assembled in point order afterwards — results are
//! therefore **bit-identical for any thread count**, provided tasks are
//! deterministic functions of their [`Scenario`] (key, seed, params).
//!
//! The worker count comes from `HIRA_THREADS` when set to a positive
//! integer; zero or unparsable values (and an unset variable) fall back to
//! [`std::thread::available_parallelism`].

use crate::record::{Metric, PointTelemetry, RunRecord, RunSet};
use crate::scenario::{Scenario, ScenarioKey, Sweep};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// One point's finished work: opaque output, metrics, optional telemetry,
/// and wall time in ms.
type Slot<R> = Mutex<Option<(R, Vec<Metric>, Option<PointTelemetry>, f64)>>;

/// One point's execution timing, handed to a [`RunObserver`] as the point
/// completes (from the worker thread that ran it).
#[derive(Debug, Clone)]
pub struct PointRun<'a> {
    /// The point's index within the sweep.
    pub index: usize,
    /// The point's coordinates.
    pub key: &'a ScenarioKey,
    /// Milliseconds the point sat queued before a worker picked it up.
    pub queue_wait_ms: f64,
    /// Milliseconds the task ran.
    pub wall_ms: f64,
}

/// A per-point completion hook: called from worker threads, in completion
/// (not point) order. Purely observational — it receives no result data
/// and cannot influence the run.
pub type RunObserver<'a> = &'a (dyn Fn(&PointRun<'_>) + Sync);

/// A sweep executor with a fixed worker-thread budget.
#[derive(Debug, Clone, Copy)]
pub struct Executor {
    threads: usize,
}

/// Parses a `HIRA_THREADS`-style value; `None` for absent/unparsable/zero.
fn parse_threads(raw: Option<&str>) -> Option<usize> {
    raw.and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
}

impl Executor {
    /// Worker count from `HIRA_THREADS`, defaulting to the machine's
    /// available parallelism.
    pub fn from_env() -> Self {
        let env = std::env::var("HIRA_THREADS").ok();
        let threads = parse_threads(env.as_deref()).unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        });
        Executor { threads }
    }

    /// An executor with an explicit worker count (clamped to ≥ 1).
    pub fn with_threads(threads: usize) -> Self {
        Executor {
            threads: threads.max(1),
        }
    }

    /// The configured worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs every point of `sweep` through `task`, which returns an opaque
    /// per-point output plus its metrics. Returns the outputs in point order
    /// and the assembled [`RunSet`].
    ///
    /// # Panics
    ///
    /// Propagates task panics after all workers stop.
    pub fn run_with<P, R, F>(&self, sweep: &Sweep<P>, task: F) -> (Vec<R>, RunSet)
    where
        P: Sync,
        R: Send,
        F: Fn(Scenario<'_, P>) -> (R, Vec<Metric>) + Sync,
    {
        self.run_instrumented(sweep, |sc| {
            let (out, metrics) = task(sc);
            (out, metrics, None)
        })
    }

    /// [`Executor::run_with`] for tasks that additionally report per-point
    /// [`PointTelemetry`] — kernel events processed and peak queue depth —
    /// which lands on every record of that point (and in the `BENCH_*.json`
    /// payload, never in the canonical serialization).
    ///
    /// # Panics
    ///
    /// Propagates task panics after all workers stop.
    pub fn run_instrumented<P, R, F>(&self, sweep: &Sweep<P>, task: F) -> (Vec<R>, RunSet)
    where
        P: Sync,
        R: Send,
        F: Fn(Scenario<'_, P>) -> (R, Vec<Metric>, Option<PointTelemetry>) + Sync,
    {
        self.run_observed(sweep, task, None)
    }

    /// [`Executor::run_instrumented`] with an optional per-point
    /// [`RunObserver`]: as each point completes, its worker thread reports
    /// the index, key, queue wait (time between run start and pickup) and
    /// task wall time. The observer sees timing only — results flow
    /// exactly as without it, so observed runs stay bit-identical.
    ///
    /// # Panics
    ///
    /// Propagates task panics after all workers stop.
    pub fn run_observed<P, R, F>(
        &self,
        sweep: &Sweep<P>,
        task: F,
        observer: Option<RunObserver<'_>>,
    ) -> (Vec<R>, RunSet)
    where
        P: Sync,
        R: Send,
        F: Fn(Scenario<'_, P>) -> (R, Vec<Metric>, Option<PointTelemetry>) + Sync,
    {
        let t0 = Instant::now();
        let n = sweep.len();
        let workers = self.threads.min(n.max(1));
        let next = AtomicUsize::new(0);
        let slots: Vec<Slot<R>> = (0..n).map(|_| Mutex::new(None)).collect();

        std::thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let w0 = Instant::now();
                    let queue_wait_ms = (w0 - t0).as_secs_f64() * 1e3;
                    let (out, metrics, telemetry) = task(sweep.scenario(i));
                    let wall_ms = w0.elapsed().as_secs_f64() * 1e3;
                    *slots[i].lock().expect("result slot") =
                        Some((out, metrics, telemetry, wall_ms));
                    if let Some(observe) = observer {
                        observe(&PointRun {
                            index: i,
                            key: &sweep.points()[i].0,
                            queue_wait_ms,
                            wall_ms,
                        });
                    }
                });
            }
        });

        let mut outputs = Vec::with_capacity(n);
        let mut records = Vec::new();
        for (i, slot) in slots.into_iter().enumerate() {
            let (out, metrics, telemetry, wall_ms) = slot
                .into_inner()
                .expect("result slot")
                .expect("point executed");
            let key = &sweep.points()[i].0;
            for m in metrics {
                records.push(RunRecord {
                    key: key.clone(),
                    metric: m.name,
                    value: m.value,
                    wall_ms,
                    telemetry,
                });
            }
            outputs.push(out);
        }
        let run = RunSet {
            sweep: sweep.name().to_string(),
            threads: workers,
            wall_ms: t0.elapsed().as_secs_f64() * 1e3,
            records,
        };
        (outputs, run)
    }

    /// [`Executor::run_with`] for tasks that only produce metrics.
    pub fn run<P, F>(&self, sweep: &Sweep<P>, task: F) -> RunSet
    where
        P: Sync,
        F: Fn(Scenario<'_, P>) -> Vec<Metric> + Sync,
    {
        self.run_with(sweep, |sc| ((), task(sc))).1
    }

    /// [`Executor::run_with`] for tasks that only produce an output value.
    pub fn map<P, R, F>(&self, sweep: &Sweep<P>, task: F) -> Vec<R>
    where
        P: Sync,
        R: Send,
        F: Fn(Scenario<'_, P>) -> R + Sync,
    {
        self.run_with(sweep, |sc| (task(sc), Vec::new())).0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::metric;
    use crate::scenario::ScenarioKey;

    fn demo_sweep(n: u32) -> Sweep<u32> {
        Sweep::new("exec_demo").axis("i", (0..n).map(|i| (i.to_string(), i)), |_, &i| i)
    }

    #[test]
    fn outputs_follow_point_order_for_any_thread_count() {
        let sweep = demo_sweep(37);
        for threads in [1, 2, 8, 64] {
            let outs = Executor::with_threads(threads).map(&sweep, |sc| *sc.params * 3);
            let expect: Vec<u32> = (0..37).map(|i| i * 3).collect();
            assert_eq!(outs, expect, "threads={threads}");
        }
    }

    #[test]
    fn canonical_results_are_byte_identical_across_thread_counts() {
        let sweep = demo_sweep(41);
        let run_at = |threads| {
            Executor::with_threads(threads)
                .run(&sweep, |sc| {
                    // A seed-driven pseudo-measurement: pure in the scenario.
                    let x = sc.seed.wrapping_mul(0x2545_F491_4F6C_DD1D);
                    vec![
                        metric("m", (x >> 11) as f64),
                        metric("twice", *sc.params as f64 * 2.0),
                    ]
                })
                .canonical_json()
        };
        let single = run_at(1);
        assert_eq!(single, run_at(2));
        assert_eq!(single, run_at(8));
    }

    #[test]
    fn runset_carries_sweep_name_thread_count_and_records() {
        let sweep = demo_sweep(3);
        let run = Executor::with_threads(2).run(&sweep, |sc| vec![metric("v", *sc.params as f64)]);
        assert_eq!(run.sweep, "exec_demo");
        assert_eq!(run.threads, 2);
        assert_eq!(run.records.len(), 3);
        assert_eq!(run.value(&[("i", "2")], "v"), 2.0);
        assert!(run.records.iter().all(|r| r.wall_ms >= 0.0));
    }

    #[test]
    fn worker_count_never_exceeds_points_and_empty_sweeps_work() {
        let empty: Sweep<u32> = Sweep::from_points("empty", 0, Vec::new());
        let run = Executor::with_threads(8).run(&empty, |_| vec![]);
        assert!(run.records.is_empty());
        let one = Sweep::from_points("one", 0, vec![(ScenarioKey::root(), 7u32)]);
        let (outs, run) = Executor::with_threads(8).run_with(&one, |sc| (*sc.params, vec![]));
        assert_eq!(outs, vec![7]);
        assert_eq!(run.threads, 1);
    }

    #[test]
    fn instrumented_tasks_stamp_telemetry_on_every_record() {
        let sweep = demo_sweep(4);
        let (_, run) = Executor::with_threads(2).run_instrumented(&sweep, |sc| {
            let t = PointTelemetry {
                events: *sc.params as u64 * 10,
                peak_queue: 3,
            };
            ((), vec![metric("a", 1.0), metric("b", 2.0)], Some(t))
        });
        assert_eq!(run.records.len(), 8);
        assert!(run
            .records
            .iter()
            .all(|r| r.telemetry.map(|t| t.peak_queue) == Some(3)));
        // Both records of point i=2 carry that point's event count.
        let events: Vec<u64> = run
            .records
            .iter()
            .filter(|r| r.key.matches(&[("i", "2")]))
            .map(|r| r.telemetry.unwrap().events)
            .collect();
        assert_eq!(events, vec![20, 20]);
        // Plain run_with leaves telemetry empty.
        let (_, plain) =
            Executor::with_threads(2).run_with(&sweep, |_| ((), vec![metric("a", 0.0)]));
        assert!(plain.records.iter().all(|r| r.telemetry.is_none()));
    }

    #[test]
    fn observers_see_every_point_without_perturbing_results() {
        let sweep = demo_sweep(9);
        let seen = Mutex::new(Vec::new());
        let observer = |p: &PointRun<'_>| {
            assert!(p.queue_wait_ms >= 0.0 && p.wall_ms >= 0.0);
            seen.lock().unwrap().push((p.index, p.key.clone()));
        };
        let (outs, run) = Executor::with_threads(4).run_observed(
            &sweep,
            |sc| (*sc.params * 3, vec![metric("m", *sc.params as f64)], None),
            Some(&observer),
        );
        let mut seen = seen.into_inner().unwrap();
        seen.sort_by_key(|(i, _)| *i);
        assert_eq!(seen.len(), 9, "one callback per point");
        for (i, (idx, key)) in seen.iter().enumerate() {
            assert_eq!(*idx, i);
            assert_eq!(key, &sweep.points()[i].0);
        }
        // Observed output identical to the unobserved run.
        let (plain_outs, plain) = Executor::with_threads(4).run_observed(
            &sweep,
            |sc| (*sc.params * 3, vec![metric("m", *sc.params as f64)], None),
            None,
        );
        assert_eq!(outs, plain_outs);
        assert_eq!(run.canonical_json(), plain.canonical_json());
    }

    #[test]
    fn thread_env_parsing() {
        assert_eq!(parse_threads(None), None);
        assert_eq!(parse_threads(Some("")), None);
        assert_eq!(parse_threads(Some("0")), None);
        assert_eq!(parse_threads(Some("nope")), None);
        assert_eq!(parse_threads(Some("4")), Some(4));
        assert_eq!(parse_threads(Some(" 12 ")), Some(12));
    }
}
