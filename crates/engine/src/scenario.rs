//! The declarative experiment model: scenario keys, sweeps and deterministic
//! per-point seeds.
//!
//! A [`Sweep`] is an ordered list of experiment points. Each point carries a
//! [`ScenarioKey`] — the ordered `axis=value` coordinates that identify it —
//! and a typed parameter payload `P` (a `SystemConfig`, a `ModuleSpec`, a
//! characterization timing, …). Sweeps are grown declaratively:
//!
//! * [`Sweep::axis`] performs cartesian-product expansion: every existing
//!   point is crossed with every value of the new axis,
//! * [`Sweep::expand`] is the general form where the new axis's values may
//!   depend on the point being expanded (e.g. a `p_th` that depends on the
//!   RowHammer threshold axis),
//! * [`Sweep::map`] transforms payloads without changing the key structure,
//! * [`Sweep::push`] adds a singleton point (reference baselines).
//!
//! Every point gets a deterministic seed derived from the sweep's base seed
//! and its key ([`derive_seed`]), so a scenario's randomness is a pure
//! function of *what* it is, never of scheduling, thread count or insertion
//! order of unrelated points.

use std::fmt;

/// Ordered `axis=value` coordinates identifying one experiment point.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct ScenarioKey {
    pairs: Vec<(String, String)>,
}

impl ScenarioKey {
    /// The empty key (the root of a sweep before any axis is added).
    pub fn root() -> Self {
        ScenarioKey::default()
    }

    /// Returns this key extended with one more `axis=value` coordinate.
    ///
    /// # Panics
    ///
    /// Panics if the axis is already present: a coordinate must identify a
    /// point unambiguously.
    pub fn with(mut self, axis: impl Into<String>, value: impl Into<String>) -> Self {
        let axis = axis.into();
        assert!(
            self.get(&axis).is_none(),
            "axis `{axis}` already present in key {self}"
        );
        self.pairs.push((axis, value.into()));
        self
    }

    /// The coordinates, in the order their axes were added.
    pub fn axes(&self) -> impl Iterator<Item = (&str, &str)> {
        self.pairs.iter().map(|(a, v)| (a.as_str(), v.as_str()))
    }

    /// The value of one axis, if present.
    pub fn get(&self, axis: &str) -> Option<&str> {
        self.pairs
            .iter()
            .find(|(a, _)| a == axis)
            .map(|(_, v)| v.as_str())
    }

    /// Whether every `(axis, value)` filter matches this key.
    pub fn matches(&self, filters: &[(&str, &str)]) -> bool {
        filters.iter().all(|&(a, v)| self.get(a) == Some(v))
    }

    /// This key with one axis removed (used when aggregating an axis away).
    pub fn without(&self, axis: &str) -> ScenarioKey {
        ScenarioKey {
            pairs: self
                .pairs
                .iter()
                .filter(|(a, _)| a != axis)
                .cloned()
                .collect(),
        }
    }

    /// Number of coordinates.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Whether this is the root (coordinate-free) key.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }
}

impl fmt::Display for ScenarioKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.pairs.is_empty() {
            return write!(f, "(root)");
        }
        for (i, (a, v)) in self.pairs.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{a}={v}")?;
        }
        Ok(())
    }
}

/// A borrowed view of one sweep point, handed to executor tasks.
#[derive(Debug, Clone, Copy)]
pub struct Scenario<'a, P> {
    /// The point's coordinates.
    pub key: &'a ScenarioKey,
    /// The point's deterministic seed ([`derive_seed`]).
    pub seed: u64,
    /// The typed parameter payload.
    pub params: &'a P,
}

/// SplitMix64 finalizer — the same mixer the DRAM model's RNG builds on.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Derives the deterministic seed of the point `key` under `base_seed`:
/// FNV-1a over the coordinates, finalized with SplitMix64. Stable across
/// runs, platforms, thread counts and the presence of other points.
pub fn derive_seed(base_seed: u64, key: &ScenarioKey) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64 ^ splitmix64(base_seed);
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    };
    for (axis, value) in key.axes() {
        eat(axis.as_bytes());
        eat(&[0x1F]); // unit separator: "a=bc" != "ab=c"
        eat(value.as_bytes());
        eat(&[0x1E]); // record separator between coordinates
    }
    splitmix64(h)
}

/// Default base seed ("HIRA" in ASCII).
pub const DEFAULT_BASE_SEED: u64 = 0x4849_5241;

/// A named, ordered collection of experiment points.
#[derive(Debug, Clone)]
pub struct Sweep<P> {
    name: String,
    base_seed: u64,
    points: Vec<(ScenarioKey, P)>,
}

impl Sweep<()> {
    /// A new sweep holding the single root point, ready for axis expansion.
    pub fn new(name: impl Into<String>) -> Self {
        Self::with_seed(name, DEFAULT_BASE_SEED)
    }

    /// [`Sweep::new`] with an explicit base seed.
    pub fn with_seed(name: impl Into<String>, base_seed: u64) -> Self {
        Sweep {
            name: name.into(),
            base_seed,
            points: vec![(ScenarioKey::root(), ())],
        }
    }
}

impl<P> Sweep<P> {
    /// Builds a sweep directly from `(key, payload)` points.
    pub fn from_points(
        name: impl Into<String>,
        base_seed: u64,
        points: Vec<(ScenarioKey, P)>,
    ) -> Self {
        Sweep {
            name: name.into(),
            base_seed,
            points,
        }
    }

    /// The sweep's name (also names its `BENCH_<name>.json` emission).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The seed all point seeds are derived from.
    pub fn base_seed(&self) -> u64 {
        self.base_seed
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the sweep holds no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The points, in execution order.
    pub fn points(&self) -> &[(ScenarioKey, P)] {
        &self.points
    }

    /// The borrowed scenario view of point `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn scenario(&self, idx: usize) -> Scenario<'_, P> {
        let (key, params) = &self.points[idx];
        Scenario {
            key,
            seed: derive_seed(self.base_seed, key),
            params,
        }
    }

    /// Cartesian-product expansion: crosses every existing point with every
    /// `(label, value)` of the new axis, combining payloads with `combine`.
    pub fn axis<V, Q>(
        self,
        axis: &str,
        values: impl IntoIterator<Item = (impl Into<String>, V)>,
        combine: impl Fn(&P, &V) -> Q,
    ) -> Sweep<Q> {
        let values: Vec<(String, V)> = values.into_iter().map(|(l, v)| (l.into(), v)).collect();
        self.expand(axis, |_, p| {
            values
                .iter()
                .map(|(l, v)| (l.clone(), combine(p, v)))
                .collect()
        })
    }

    /// General expansion: the new axis's `(label, payload)` values may depend
    /// on the point being expanded. A point mapping to an empty list is
    /// dropped (axis-dependent filtering).
    pub fn expand<Q>(
        self,
        axis: &str,
        f: impl Fn(&ScenarioKey, &P) -> Vec<(String, Q)>,
    ) -> Sweep<Q> {
        let mut points = Vec::new();
        for (key, p) in &self.points {
            for (label, q) in f(key, p) {
                points.push((key.clone().with(axis, label), q));
            }
        }
        Sweep {
            name: self.name,
            base_seed: self.base_seed,
            points,
        }
    }

    /// Transforms every payload, keeping keys and order.
    pub fn map<Q>(self, f: impl Fn(&ScenarioKey, P) -> Q) -> Sweep<Q> {
        let name = self.name;
        let base_seed = self.base_seed;
        let points = self.points.into_iter().map(|(k, p)| {
            let q = f(&k, p);
            (k, q)
        });
        Sweep {
            name,
            base_seed,
            points: points.collect(),
        }
    }

    /// Keeps only the points whose key satisfies `pred`.
    pub fn retain(mut self, pred: impl Fn(&ScenarioKey, &P) -> bool) -> Self {
        self.points.retain(|(k, p)| pred(k, p));
        self
    }

    /// Adds one singleton point (e.g. a normalization baseline that sits
    /// outside the cartesian grid).
    pub fn push(&mut self, key: ScenarioKey, params: P) {
        self.points.push((key, params));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn axis_expansion_is_cartesian_in_declaration_order() {
        let sweep = Sweep::new("t")
            .axis("a", [("1", 1u32), ("2", 2)], |_, v| *v)
            .axis("b", [("x", 10u32), ("y", 20)], |a, b| a + b);
        assert_eq!(sweep.len(), 4);
        let got: Vec<(String, u32)> = sweep
            .points()
            .iter()
            .map(|(k, v)| (k.to_string(), *v))
            .collect();
        assert_eq!(
            got,
            vec![
                ("a=1 b=x".into(), 11),
                ("a=1 b=y".into(), 21),
                ("a=2 b=x".into(), 12),
                ("a=2 b=y".into(), 22),
            ]
        );
    }

    #[test]
    fn expand_supports_point_dependent_axes_and_drops_empty() {
        let sweep = Sweep::new("t")
            .axis("n", [("1", 1u32), ("2", 2), ("3", 3)], |_, v| *v)
            .expand("half", |_, &n| {
                if n % 2 == 0 {
                    vec![("lo".to_string(), n), ("hi".to_string(), n * 10)]
                } else {
                    vec![]
                }
            });
        assert_eq!(sweep.len(), 2);
        assert_eq!(sweep.points()[0].0.to_string(), "n=2 half=lo");
        assert_eq!(sweep.points()[1].1, 20);
    }

    #[test]
    fn key_lookup_filters_and_removal() {
        let k = ScenarioKey::root()
            .with("scheme", "HiRA-4")
            .with("cap", "8");
        assert_eq!(k.get("scheme"), Some("HiRA-4"));
        assert_eq!(k.get("nope"), None);
        assert!(k.matches(&[("cap", "8")]));
        assert!(k.matches(&[("cap", "8"), ("scheme", "HiRA-4")]));
        assert!(!k.matches(&[("cap", "2")]));
        assert_eq!(k.without("cap").to_string(), "scheme=HiRA-4");
        assert!(ScenarioKey::root().matches(&[]));
    }

    #[test]
    #[should_panic(expected = "already present")]
    fn duplicate_axis_is_rejected() {
        let _ = ScenarioKey::root().with("a", "1").with("a", "2");
    }

    #[test]
    fn seeds_are_deterministic_and_distinct_per_key() {
        let k1 = ScenarioKey::root().with("a", "1");
        let k2 = ScenarioKey::root().with("a", "2");
        let k3 = ScenarioKey::root().with("a", "1").with("b", "1");
        assert_eq!(derive_seed(7, &k1), derive_seed(7, &k1));
        assert_ne!(derive_seed(7, &k1), derive_seed(7, &k2));
        assert_ne!(derive_seed(7, &k1), derive_seed(7, &k3));
        assert_ne!(derive_seed(7, &k1), derive_seed(8, &k1));
        // Coordinate boundaries matter: "a=bc" must differ from "ab=c".
        let kx = ScenarioKey::root().with("a", "bc");
        let ky = ScenarioKey::root().with("ab", "c");
        assert_ne!(derive_seed(7, &kx), derive_seed(7, &ky));
    }

    #[test]
    fn scenario_view_exposes_derived_seed() {
        let sweep = Sweep::with_seed("t", 99).axis("a", [("1", 1u32)], |_, v| *v);
        let sc = sweep.scenario(0);
        assert_eq!(sc.seed, derive_seed(99, sc.key));
        assert_eq!(*sc.params, 1);
    }

    #[test]
    fn push_and_retain_edit_the_point_set() {
        let mut sweep = Sweep::new("t").axis("a", [("1", 1u32), ("2", 2)], |_, v| *v);
        sweep.push(ScenarioKey::root().with("baseline", "yes"), 0);
        assert_eq!(sweep.len(), 3);
        let kept = sweep.retain(|k, _| k.get("a") != Some("1"));
        assert_eq!(kept.len(), 2);
    }
}
