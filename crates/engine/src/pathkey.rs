//! Filesystem-safe renderings of sweep coordinates.
//!
//! Sweep points fan out into per-point artifacts — probe output files, the
//! sweep store's JSONL shards — and both need the same guarantee: a string
//! derived from a [`ScenarioKey`] (or a sweep name) that is safe as a path
//! component and distinct for distinct keys in practice. This module is the
//! single implementation both consumers share; `hira-bench` splices
//! [`sanitize_key`] tags into probe output paths ([`suffix_path`]) and
//! `hira-store` names its shards with [`sanitize_component`].

use crate::scenario::ScenarioKey;

/// Maps one free-form string onto a filesystem-safe path component:
/// ASCII alphanumerics, `-`, `_` and `.` pass through, everything else
/// becomes `-`. The empty string stays empty (callers treat that as "no
/// tag").
pub fn sanitize_component(s: &str) -> String {
    s.chars()
        .map(|c| match c {
            c if c.is_ascii_alphanumeric() || c == '-' || c == '_' || c == '.' => c,
            _ => '-',
        })
        .collect()
}

/// A filesystem-safe rendering of a scenario key: `policy=hira4 cap=8`
/// becomes `policy-hira4_cap-8`; the root key renders empty.
pub fn sanitize_key(key: &ScenarioKey) -> String {
    let mut out = String::new();
    for (i, (a, v)) in key.axes().enumerate() {
        if i > 0 {
            out.push('_');
        }
        out.push_str(&sanitize_component(a));
        out.push('-');
        out.push_str(&sanitize_component(v));
    }
    out
}

/// Inserts `.tag` before the final extension (`out/epochs.jsonl` →
/// `out/epochs.<tag>.jsonl`), or appends it when the path has none. An
/// empty tag returns the path unchanged.
pub fn suffix_path(path: &str, tag: &str) -> String {
    if tag.is_empty() {
        return path.to_owned();
    }
    match path.rsplit_once('.') {
        Some((stem, ext)) if !stem.is_empty() && !ext.contains('/') => {
            format!("{stem}.{tag}.{ext}")
        }
        _ => format!("{path}.{tag}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn components_map_unsafe_characters_to_dashes() {
        assert_eq!(sanitize_component("policy_matrix"), "policy_matrix");
        assert_eq!(
            sanitize_component("trace:/tmp/a.trace"),
            "trace--tmp-a.trace"
        );
        assert_eq!(sanitize_component("µ ops"), "--ops");
        assert_eq!(sanitize_component(""), "");
    }

    #[test]
    fn keys_render_axis_dash_value_joined_by_underscores() {
        let key = ScenarioKey::root().with("policy", "hira4").with("cap", "8");
        assert_eq!(sanitize_key(&key), "policy-hira4_cap-8");
        assert_eq!(sanitize_key(&ScenarioKey::root()), "");
        let odd = ScenarioKey::root().with("wl", "trace:/tmp/a.trace");
        assert_eq!(sanitize_key(&odd), "wl-trace--tmp-a.trace");
    }

    #[test]
    fn suffixing_splices_before_the_extension() {
        assert_eq!(
            suffix_path("out/epochs.jsonl", "mix-0"),
            "out/epochs.mix-0.jsonl"
        );
        assert_eq!(suffix_path("trace", "mix-0"), "trace.mix-0");
        assert_eq!(suffix_path("dir.d/file", "t"), "dir.d/file.t");
        assert_eq!(suffix_path("a.jsonl", ""), "a.jsonl");
    }
}
