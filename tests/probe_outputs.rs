//! Built-in probe output validation: the command-trace files round-trip
//! through the strict [`hira::sim::probe::parse_cmdtrace`] parser and
//! agree — command by command — with the controller's own counters; the
//! epoch JSONL matches the in-memory collector; the latency probe agrees
//! with the always-on histograms; the ACT-exposure map accounts for every
//! activation and its neighbor (victim-row) counts agree with the
//! OracleRh defense's tracker; and the run telemetry distinguishes the
//! two kernels. The
//! bit-identity of probed vs bare runs is asserted separately in
//! `tests/kernel_equivalence.rs`.

use hira::prelude::*;
use hira::sim::probe::CmdTraceProbe;
use std::path::PathBuf;

fn out_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hira-probe-outputs-{name}"));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn small(policy: PolicyHandle) -> SystemBuilder {
    SystemBuilder::new().policy(policy).insts(2_000, 400)
}

#[test]
fn cmdtrace_round_trips_and_matches_the_command_counters() {
    let dir = out_dir("cmdtrace");
    let prefix = dir.join("baseline");
    let cfg = small(policy::baseline())
        .probe(probe::probe(&format!("cmdtrace:{}", prefix.display())))
        .build()
        .unwrap();
    let r = System::new(cfg).run();

    let mut acts = 0u64;
    let mut reads = 0u64;
    let mut writes = 0u64;
    let mut refs = 0u64;
    let mut pres = 0u64;
    for (ch, stats) in r.channel_stats.iter().enumerate() {
        let path = CmdTraceProbe::channel_path(&prefix, ch);
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("missing trace {}: {e}", path.display()));
        let records = probe::parse_cmdtrace(&text).expect("trace must satisfy its own parser");
        assert!(!records.is_empty(), "channel {ch} trace is empty");
        for rec in &records {
            match rec.cmd {
                DramCmd::Act => {
                    acts += 1;
                    assert!(rec.bank.is_some() && rec.row.is_some());
                }
                DramCmd::Rd => reads += 1,
                DramCmd::Wr => writes += 1,
                DramCmd::Ref => refs += 1,
                DramCmd::Pre | DramCmd::PreA => pres += 1,
                DramCmd::RefPb => {}
            }
        }
        assert!(stats.reads_done > 0);
    }
    let expect_acts: u64 = r
        .channel_stats
        .iter()
        .map(|s| s.demand_acts + s.refresh_acts)
        .sum();
    let expect_refs: u64 = r.channel_stats.iter().map(|s| s.ref_commands).sum();
    let expect_writes: u64 = r.channel_stats.iter().map(|s| s.writes_done).sum();
    assert_eq!(acts, expect_acts, "every ACT must appear in the trace");
    assert_eq!(reads, r.total_reads(), "every RD must appear in the trace");
    assert_eq!(writes, expect_writes, "every WR must appear in the trace");
    assert_eq!(refs, expect_refs, "every REF must appear in the trace");
    assert!(pres > 0, "precharges must be traced");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn epoch_jsonl_matches_the_in_memory_collector() {
    let dir = out_dir("epochs");
    let path = dir.join("epochs.jsonl");
    let (collector, sink) = epoch_collector(4_096);
    let jsonl = probe::probe(&format!("epochs:4096:{}", path.display()));
    let cfg = small(policy::baseline())
        .probe(ProbeHandle::multi(vec![jsonl, collector]))
        .build()
        .unwrap();
    System::new(cfg).run();

    let samples = sink.lock().unwrap().clone();
    assert!(samples.len() >= 2, "run too short for the epoch sampler");
    let text = std::fs::read_to_string(&path).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), samples.len());
    for (line, sample) in lines.iter().zip(&samples) {
        assert_eq!(*line, probe::epoch_jsonl_line(sample));
        // Sanity on the schema: parseable numbers in the documented keys.
        assert!(line.starts_with("{\"epoch\":"));
        assert!(line.contains("\"refresh_occupancy\":"));
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn latency_collector_agrees_with_the_builtin_histograms() {
    let (handle, sink) = latency_collector();
    let cfg = small(policy::baseline()).probe(handle).build().unwrap();
    let r = System::new(cfg).run();
    let (read, write) = *sink.lock().unwrap();
    assert_eq!(read, r.read_latency_histogram());
    assert_eq!(write, r.write_latency_histogram());
    assert!(read.count() > 0);
    // The quantiles surfaced in the matrix tables come from the same
    // histograms, so they agree by construction — spot-check the API.
    assert_eq!(r.read_latency_quantile(0.5), read.quantile(0.5));
}

#[test]
fn act_exposure_accounts_for_every_activation() {
    let (handle, sink) = probe::act_exposure_collector();
    let cfg = small(policy::baseline()).probe(handle).build().unwrap();
    let r = System::new(cfg).run();
    let map = sink.lock().unwrap().clone();
    let total: u64 = map.values().sum();
    let expect: u64 = r
        .channel_stats
        .iter()
        .map(|s| s.demand_acts + s.refresh_acts)
        .sum();
    assert_eq!(total, expect, "every ACT must land on exactly one row");
    for addr in map.keys() {
        assert!(addr.channel < r.channel_stats.len());
    }
}

#[test]
fn act_exposure_neighbor_probe_agrees_with_the_oracle_plugin() {
    // The same ACT stream through two independent observers: the
    // read-only neighbor-counting probe and the OracleRh defense's
    // per-row exposure tracker. Direct and victim-row accounting must
    // agree exactly — including over the defense's own injected
    // refreshes, which execute as real activations and are re-observed
    // by both sides.
    let run = |t_rh: u64| {
        let (handle, direct, neighbors) = probe::act_exposure_neighbor_collector();
        let cfg = small(policy::baseline())
            .workload_name("hotspot")
            .plugin(plugin::oracle(t_rh))
            .probe(handle)
            .build()
            .unwrap();
        let r = System::new(cfg).run();
        let probe_acts: u64 = direct.lock().unwrap().values().sum();
        let probe_neighbors: u64 = neighbors.lock().unwrap().values().sum();
        (r, probe_acts, probe_neighbors)
    };
    // Quiet threshold: the plugin only watches.
    let (r, acts, neighbors) = run(1 << 40);
    let totals = r.plugin_totals();
    assert_eq!(totals.injected, 0, "nothing may fire at a quiet threshold");
    assert!(acts > 0);
    assert_eq!(acts, totals.acts_observed, "probe vs plugin ACT counts");
    assert_eq!(
        neighbors, totals.neighbor_increments,
        "probe vs plugin victim-row counts"
    );
    // Firing threshold: the stream now contains the plugin's own
    // preventive refreshes and the two accountings must still agree.
    let (r, acts, neighbors) = run(2);
    let totals = r.plugin_totals();
    assert!(
        totals.injected > 0,
        "the defended stream must include injections"
    );
    assert_eq!(acts, totals.acts_observed, "probe vs plugin ACT counts");
    assert_eq!(
        neighbors, totals.neighbor_increments,
        "probe vs plugin victim-row counts"
    );
}

#[test]
fn run_telemetry_separates_the_kernels() {
    let run = |kernel| {
        let cfg = small(policy::baseline()).kernel(kernel).build().unwrap();
        System::new(cfg).run_telemetered()
    };
    let (dense_r, dense_t) = run(KernelMode::Dense);
    let (event_r, event_t) = run(KernelMode::Event);
    assert_eq!(dense_r, event_r);
    // The dense kernel processes every CPU cycle; the event kernel skips
    // the uninteresting ones — that gap is the whole point of the
    // telemetry's `events` counter.
    assert_eq!(dense_t.events, dense_r.cycles);
    assert!(
        event_t.events < dense_t.events,
        "event kernel processed {} events, dense {}",
        event_t.events,
        dense_t.events
    );
    // Queue evolution is identical, so the high-water mark is too.
    assert_eq!(dense_t.peak_queue, event_t.peak_queue);
    assert!(dense_t.peak_queue > 0);
}

#[test]
fn captured_traces_replay_under_probes() {
    // The workload `.trace` tooling and the probe layer compose: capture a
    // generator's access stream, replay it through the `trace:` frontend
    // with the full probe kit attached, and the replay is bit-identical to
    // the unprobed replay.
    let dir = out_dir("trace-replay");
    let trace_path = dir.join("captured.trace");
    let mut wl = hira::workload::stream().build(&WorkloadEnv {
        core: 0,
        cores: 1,
        seed: 7,
    });
    Trace::capture(wl.as_mut(), 256).save(&trace_path).unwrap();
    // Round-trip through the .trace parser before simulating with it.
    let text = std::fs::read_to_string(&trace_path).unwrap();
    assert_eq!(Trace::parse(&text).unwrap().records().len(), 256);

    let spec = format!("trace:{}", trace_path.display());
    let build = |probe_handle: Option<ProbeHandle>| {
        let mut b = SystemBuilder::new()
            .cores(1)
            .policy(policy::baseline())
            .workload_name(&spec)
            .insts(1_000, 200);
        if let Some(p) = probe_handle {
            b = b.probe(p);
        }
        System::new(b.build().unwrap()).run()
    };
    let bare = build(None);
    let (latency, _) = latency_collector();
    let probed = build(Some(ProbeHandle::multi(vec![
        latency,
        probe::probe(&format!("cmdtrace:{}", dir.join("replay").display())),
    ])));
    assert_eq!(bare, probed);
    let trace0 = CmdTraceProbe::channel_path(&dir.join("replay"), 0);
    let recs = probe::parse_cmdtrace(&std::fs::read_to_string(trace0).unwrap()).unwrap();
    assert!(!recs.is_empty());
    std::fs::remove_dir_all(&dir).ok();
}
