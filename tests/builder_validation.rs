//! Property-based tests for [`SystemBuilder`] validation, in the repo's
//! established style: cases generated from the deterministic [`Stream`] RNG
//! (fixed seeds, many random cases per property) rather than an external
//! property-testing dependency. Every failure message includes the case
//! inputs, so a red run reproduces exactly.

use hira::dram::rng::Stream;
use hira::dram::timing::{trfc_for_capacity, TimingParams};
use hira::prelude::*;

/// Deterministic case source for one property.
fn cases(property_tag: u64) -> Stream {
    Stream::from_words(&[0x4255_494C_4452, property_tag])
}

#[test]
fn zero_structural_counts_are_always_rejected() {
    let mut rng = cases(1);
    for case in 0..64 {
        // Randomize the other dimensions; zero out one structural count.
        let which = rng.next_below(5);
        let cores = 1 + rng.next_below(15) as usize;
        let channels = 1 + rng.next_below(7) as usize;
        let ranks = 1 + rng.next_below(7) as usize;
        let banks = 4u16 << rng.next_below(3);
        let b = SystemBuilder::new()
            .cores(if which == 0 { 0 } else { cores })
            .geometry(
                if which == 1 { 0 } else { channels },
                if which == 2 { 0 } else { ranks },
            )
            .banks(
                if which == 3 { 0 } else { banks },
                if which == 3 { 4 } else { banks / 4 },
            )
            .queue_depth(if which == 4 { 0 } else { 64 });
        let err = b.build().expect_err(&format!(
            "case {case}: zero count {which} accepted (cores={cores} ch={channels} rk={ranks})"
        ));
        assert!(
            matches!(err, BuildError::ZeroCount { .. }),
            "case {case}: wrong error {err:?}"
        );
    }
}

#[test]
fn bank_groups_must_divide_banks() {
    let mut rng = cases(2);
    for case in 0..64 {
        let banks = 1 + rng.next_below(64) as u16;
        let groups = 1 + rng.next_below(16) as u16;
        let result = SystemBuilder::new().banks(banks, groups).build();
        if banks.is_multiple_of(groups) {
            assert!(
                result.is_ok(),
                "case {case}: {banks}/{groups} wrongly rejected: {:?}",
                result.unwrap_err()
            );
        } else {
            assert_eq!(
                result.unwrap_err(),
                BuildError::BankGroupMismatch {
                    banks,
                    bank_groups: groups
                },
                "case {case}: {banks}/{groups}"
            );
        }
    }
}

#[test]
fn refresh_window_and_row_cycle_cross_checks_hold() {
    let mut rng = cases(3);
    for case in 0..64 {
        let mut t = TimingParams::ddr4_2400();
        // Random tRFC around tREFI: beyond it must be rejected.
        t.t_rfc = t.t_refi * (0.2 + 1.6 * rng.next_f64());
        let result = SystemBuilder::new().timing(t).build();
        if t.t_rfc >= t.t_refi {
            assert!(
                matches!(result, Err(BuildError::RefreshWindowTooTight { .. })),
                "case {case}: tRFC {} vs tREFI {} accepted",
                t.t_rfc,
                t.t_refi
            );
        } else {
            assert!(result.is_ok(), "case {case}: valid timing rejected");
        }
        // Random tRC below tRAS+tRP must be rejected.
        let mut t = TimingParams::ddr4_2400();
        t.t_rc = (t.t_ras + t.t_rp) * (0.5 + 0.7 * rng.next_f64());
        let result = SystemBuilder::new().timing(t).build();
        if t.t_rc + 1e-9 < t.t_ras + t.t_rp {
            assert!(
                matches!(result, Err(BuildError::RowCycleInconsistent { .. })),
                "case {case}: tRC {} accepted below {}",
                t.t_rc,
                t.t_ras + t.t_rp
            );
        } else {
            assert!(result.is_ok(), "case {case}: valid tRC rejected");
        }
    }
}

#[test]
fn warmup_must_stay_below_the_instruction_budget() {
    let mut rng = cases(4);
    for case in 0..64 {
        let insts = 1 + rng.next_below(100_000);
        let warmup = rng.next_below(200_000);
        let result = SystemBuilder::new().insts(insts, warmup).build();
        if warmup >= insts {
            assert_eq!(
                result.unwrap_err(),
                BuildError::WarmupExceedsBudget { warmup, insts },
                "case {case}"
            );
        } else {
            assert!(result.is_ok(), "case {case}: {warmup} < {insts} rejected");
        }
    }
}

#[test]
fn builder_reproduces_the_legacy_table3_struct_literals() {
    // The builder's output must equal the hand-assembled configuration the
    // harness used to carry, for every Table 3 capacity × policy preset.
    let caps = [2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0];
    let policies = [policy::noref(), policy::baseline(), policy::hira(4)];
    for &cap in &caps {
        for p in &policies {
            let mut timing = TimingParams::ddr4_2400();
            timing.t_rfc = trfc_for_capacity(cap);
            let legacy = SystemConfig {
                cores: 8,
                channels: 1,
                ranks: 1,
                banks: 16,
                bank_groups: 4,
                chip_gbit: cap,
                device: device::ddr4_2400(),
                timing,
                refresh: p.clone(),
                workload: mix(0),
                llc_bytes: 8 << 20,
                llc_ways: 8,
                queue_depth: 64,
                insts_per_core: 100_000,
                warmup_insts: 20_000,
                spt_fraction: 0.32,
                seed: 0x5157,
                kernel: KernelMode::default(),
                cycle_cap: None,
                probe: None,
                plugins: Vec::new(),
            };
            let built = SystemBuilder::table3(cap)
                .policy(p.clone())
                .build()
                .unwrap();
            assert_eq!(built, legacy, "cap={cap} policy={}", p.name());
            assert_eq!(built, SystemConfig::table3(cap, p.clone()));
        }
    }
}

#[test]
fn hira_lead_timings_are_validated_against_the_device() {
    // Property: a custom HiRA lead pair builds iff 0 < t1 <= t2 < tRAS.
    // Random pairs on the SoftMC 1.5 ns grid (§4.1 fn. 5) plus sign and
    // overshoot cases.
    use hira::core::config::HiraConfig;
    use hira::core::hira_op::HiraOperation;
    let t_ras = TimingParams::ddr4_2400().t_ras;
    let mut rng = cases(7);
    for case in 0..64 {
        let t1 = 1.5 * rng.next_below(30) as f64 - 4.5; // -4.5 .. 39
        let t2 = 1.5 * rng.next_below(30) as f64 - 4.5;
        let mut c = HiraConfig::hira_n(4);
        c.op = HiraOperation::with_timings(HiraTimings { t1, t2 });
        let result = SystemBuilder::new()
            .policy(policy::hira_custom(format!("hira-case{case}"), c))
            .build();
        if t1 > 0.0 && t1 <= t2 && t2 < t_ras {
            assert!(
                result.is_ok(),
                "case {case}: valid lead ({t1}, {t2}) rejected: {:?}",
                result.unwrap_err()
            );
        } else {
            assert_eq!(
                result.unwrap_err(),
                BuildError::HiraLeadInvalid { t1, t2, t_ras },
                "case {case}: ({t1}, {t2})"
            );
        }
    }
}

#[test]
fn every_registered_device_satisfies_the_timing_invariants() {
    // Registry-wide property: each device's capacity-scaled table must be
    // internally consistent at every capacity — the contract documented
    // on `DeviceModel::timing`.
    let registry = DeviceRegistry::standard();
    assert!(registry.len() >= 4, "need at least four device presets");
    let mut devices: Vec<DeviceHandle> = registry.handles().cloned().collect();
    devices.push(device::ddr4_2400_at(32)); // the dynamic form, too
    for d in &devices {
        for cap in [4.0, 8.0, 32.0, 64.0, 128.0] {
            let t = d.timing(cap);
            let tag = format!("{} at {cap} Gb", d.name());
            assert!(t.t_rc + 1e-9 >= t.t_ras + t.t_rp, "{tag}: tRC < tRAS+tRP");
            assert!(t.t_rfc < t.t_refi, "{tag}: tRFC {} >= tREFI", t.t_rfc);
            assert!(
                t.t_faw + 1e-9 >= 4.0 * t.t_rrd_s,
                "{tag}: tFAW {} < 4*tRRD_S {}",
                t.t_faw,
                4.0 * t.t_rrd_s
            );
            // And the builder accepts the table it produced.
            let cfg = SystemBuilder::new()
                .device(d.clone())
                .chip_gbit(cap)
                .build()
                .unwrap_or_else(|e| panic!("{tag}: {e}"));
            assert_eq!(cfg.device.name(), d.name());
        }
        // The profile's clock rational is consistent with its frequencies
        // (MemClock::new asserts it) and the geometry divides evenly.
        let p = d.profile();
        let _ = p.clock();
        assert_eq!(p.banks % p.bank_groups, 0, "{}", d.name());
    }
}

#[test]
fn valid_random_configurations_build_and_simulate() {
    // Fuzz the whole builder surface with valid inputs: the result must
    // always construct and pass its own invariants.
    let mut rng = cases(6);
    let registry = PolicyRegistry::standard();
    let names = registry.names();
    for case in 0..24 {
        let banks_pow = rng.next_below(3); // 4, 8, 16
        let banks = 4u16 << banks_pow;
        let groups = 1u16 << rng.next_below(banks_pow + 1);
        let policy_name = names[rng.next_below(names.len() as u64) as usize];
        let insts = 1_000 + rng.next_below(4_000);
        let cfg = SystemBuilder::new()
            .chip_gbit([2.0, 8.0, 32.0, 128.0][rng.next_below(4) as usize])
            .banks(banks, groups)
            .geometry(
                1 + rng.next_below(4) as usize,
                1 + rng.next_below(4) as usize,
            )
            .policy(registry.lookup(policy_name).unwrap())
            .insts(insts, insts / 5)
            .seed(rng.next_u64())
            .build()
            .unwrap_or_else(|e| panic!("case {case}: valid config rejected: {e}"));
        assert!(cfg.banks.is_multiple_of(cfg.bank_groups), "case {case}");
        assert!(cfg.timing.t_rfc < cfg.timing.t_refi, "case {case}");
    }
}
