//! Property-based tests over the core data structures and invariants.

use hira::core::refresh_table::{RefreshEntry, RefreshKind, RefreshTable};
use hira::core::security::{p_rh, solve_pth, SecurityParams};
use hira::dram::addr::{BankId, RowId};
use hira::dram::isolation::IsolationMap;
use hira::dram::mapping::RowMapping;
use hira::dram::rng::Stream;
use proptest::prelude::*;

proptest! {
    #[test]
    fn isolation_is_symmetric_and_excludes_neighbors(
        seed in any::<u64>(),
        a in 0u32..32_768,
        b in 0u32..32_768,
    ) {
        let m = IsolationMap::new(seed, 32 * 1024, 512, 0.32, 0.03);
        let ab = m.isolated(RowId(a), RowId(b));
        prop_assert_eq!(ab, m.isolated(RowId(b), RowId(a)));
        if (a / 512).abs_diff(b / 512) <= 1 {
            prop_assert!(!ab);
        }
    }

    #[test]
    fn row_mapping_is_bijective(seed in any::<u64>(), block in 0u32..64) {
        let m = RowMapping::for_module(seed);
        let mut seen = std::collections::HashSet::new();
        for r in block * 512..(block + 1) * 512 {
            let p = m.to_physical(RowId(r));
            prop_assert!(seen.insert(p.0));
            prop_assert_eq!(m.to_logical(p), RowId(r));
        }
    }

    #[test]
    fn refresh_table_never_exceeds_capacity_and_pops_in_deadline_order(
        deadlines in proptest::collection::vec(0.0f64..1e6, 1..200),
    ) {
        let mut t = RefreshTable::new(68);
        let mut accepted = 0usize;
        for (i, d) in deadlines.iter().enumerate() {
            let e = RefreshEntry {
                deadline: *d,
                bank: BankId((i % 16) as u16),
                kind: RefreshKind::Periodic,
                victim: None,
            };
            if t.insert(e) {
                accepted += 1;
            }
            prop_assert!(t.len() <= 68);
        }
        let mut last = f64::NEG_INFINITY;
        let mut popped = 0usize;
        while let Some(e) = t.pop_due(f64::INFINITY) {
            prop_assert!(e.deadline >= last);
            last = e.deadline;
            popped += 1;
        }
        prop_assert_eq!(popped, accepted);
    }

    #[test]
    fn security_pth_is_monotone_and_holds_target(nrh in 64u32..4096) {
        let params = SecurityParams::paper_defaults(0);
        let pth = solve_pth(&params, nrh);
        prop_assert!((0.0..=1.0).contains(&pth));
        let achieved = p_rh(&params, nrh, pth);
        prop_assert!((achieved / 1e-15 - 1.0).abs() < 1e-4);
        // A weaker threshold must not hold the target.
        let weaker = p_rh(&params, nrh, (pth * 0.8).max(1e-6));
        prop_assert!(weaker >= achieved);
    }

    #[test]
    fn deterministic_stream_is_stable(words in proptest::collection::vec(any::<u64>(), 1..6)) {
        let mut a = Stream::from_words(&words);
        let mut b = Stream::from_words(&words);
        for _ in 0..16 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn chip_never_corrupts_under_nominal_timing(
        rows in proptest::collection::vec(0u32..32_768, 1..12),
        pattern in any::<u8>(),
    ) {
        use hira::dram::{DramModule, ModuleSpec};
        use hira::dram::command::DramCommand;
        let mut m = DramModule::new(ModuleSpec::sk_hynix_4gb(0xBEE));
        let t = *m.timing();
        let data = vec![pattern; m.geometry().row_bytes];
        for &r in &rows {
            m.write_row(BankId(0), RowId(r), &data);
        }
        // A burst of nominally-timed activate/precharge cycles.
        for &r in &rows {
            let now = m.now();
            m.execute(DramCommand::Act { bank: BankId(0), row: RowId(r) }, now);
            m.execute(DramCommand::Pre { bank: BankId(0) }, now + t.t_ras);
            m.wait(t.t_rp);
        }
        for &r in &rows {
            prop_assert_eq!(m.read_row(BankId(0), RowId(r)), data.clone());
        }
    }
}
