//! Property-based tests over the core data structures and invariants.
//!
//! Cases are generated from the repo's own deterministic [`Stream`] RNG
//! (fixed seeds, many random cases per property) rather than an external
//! property-testing dependency — the workspace must build offline with the
//! standard library only. Every failure message includes the case inputs,
//! so a red run reproduces exactly.

use hira::core::refresh_table::{RefreshEntry, RefreshKind, RefreshTable};
use hira::core::security::{p_rh, solve_pth, SecurityParams};
use hira::dram::addr::{BankId, RowId};
use hira::dram::isolation::IsolationMap;
use hira::dram::mapping::RowMapping;
use hira::dram::rng::Stream;

/// Deterministic case source for one property.
fn cases(property_tag: u64) -> Stream {
    Stream::from_words(&[0x5052_4F50_5354, property_tag])
}

#[test]
fn isolation_is_symmetric_and_excludes_neighbors() {
    let mut rng = cases(1);
    for case in 0..64 {
        let seed = rng.next_u64();
        let a = rng.next_below(32_768) as u32;
        let b = rng.next_below(32_768) as u32;
        let m = IsolationMap::new(seed, 32 * 1024, 512, 0.32, 0.03);
        let ab = m.isolated(RowId(a), RowId(b));
        assert_eq!(
            ab,
            m.isolated(RowId(b), RowId(a)),
            "case {case}: asymmetric for seed={seed:#x} a={a} b={b}"
        );
        if (a / 512).abs_diff(b / 512) <= 1 {
            assert!(
                !ab,
                "case {case}: same/adjacent subarray pair a={a} b={b} isolated"
            );
        }
    }
}

#[test]
fn row_mapping_is_bijective() {
    let mut rng = cases(2);
    for case in 0..24 {
        let seed = rng.next_u64();
        let block = rng.next_below(64) as u32;
        let m = RowMapping::for_module(seed);
        let mut seen = std::collections::HashSet::new();
        for r in block * 512..(block + 1) * 512 {
            let p = m.to_physical(RowId(r));
            assert!(
                seen.insert(p.0),
                "case {case}: collision at logical {r} (seed={seed:#x} block={block})"
            );
            assert_eq!(
                m.to_logical(p),
                RowId(r),
                "case {case}: not invertible at {r}"
            );
        }
    }
}

#[test]
fn refresh_table_never_exceeds_capacity_and_pops_in_deadline_order() {
    let mut rng = cases(3);
    for case in 0..32 {
        let len = rng.next_below(199) as usize + 1;
        let deadlines: Vec<f64> = (0..len).map(|_| rng.next_f64() * 1e6).collect();
        let mut t = RefreshTable::new(68);
        let mut accepted = 0usize;
        for (i, &d) in deadlines.iter().enumerate() {
            let e = RefreshEntry {
                deadline: d,
                bank: BankId((i % 16) as u16),
                kind: RefreshKind::Periodic,
                victim: None,
            };
            if t.insert(e) {
                accepted += 1;
            }
            assert!(t.len() <= 68, "case {case}: table overflow at insert {i}");
        }
        let mut last = f64::NEG_INFINITY;
        let mut popped = 0usize;
        while let Some(e) = t.pop_due(f64::INFINITY) {
            assert!(
                e.deadline >= last,
                "case {case}: deadline order violated ({} after {last})",
                e.deadline
            );
            last = e.deadline;
            popped += 1;
        }
        assert_eq!(popped, accepted, "case {case}: popped != accepted");
    }
}

#[test]
fn security_pth_is_monotone_and_holds_target() {
    let mut rng = cases(4);
    for case in 0..48 {
        let nrh = rng.next_below(4096 - 64) as u32 + 64;
        let params = SecurityParams::paper_defaults(0);
        let pth = solve_pth(&params, nrh);
        assert!(
            (0.0..=1.0).contains(&pth),
            "case {case}: pth {pth} out of range (nrh={nrh})"
        );
        let achieved = p_rh(&params, nrh, pth);
        assert!(
            (achieved / 1e-15 - 1.0).abs() < 1e-4,
            "case {case}: target missed at nrh={nrh}: {achieved}"
        );
        // A weaker threshold must not hold the target.
        let weaker = p_rh(&params, nrh, (pth * 0.8).max(1e-6));
        assert!(
            weaker >= achieved,
            "case {case}: weaker pth held the target (nrh={nrh})"
        );
    }
}

#[test]
fn deterministic_stream_is_stable() {
    let mut rng = cases(5);
    for case in 0..32 {
        let len = rng.next_below(5) as usize + 1;
        let words: Vec<u64> = (0..len).map(|_| rng.next_u64()).collect();
        let mut a = Stream::from_words(&words);
        let mut b = Stream::from_words(&words);
        for step in 0..16 {
            assert_eq!(
                a.next_u64(),
                b.next_u64(),
                "case {case}: streams diverged at step {step} (words={words:#x?})"
            );
        }
    }
}

#[test]
fn chip_never_corrupts_under_nominal_timing() {
    use hira::dram::command::DramCommand;
    use hira::dram::{DramModule, ModuleSpec};
    let mut rng = cases(6);
    for case in 0..12 {
        let n_rows = rng.next_below(11) as usize + 1;
        let rows: Vec<u32> = (0..n_rows).map(|_| rng.next_below(32_768) as u32).collect();
        let pattern = rng.next_below(256) as u8;
        let mut m = DramModule::new(ModuleSpec::sk_hynix_4gb(0xBEE));
        let t = *m.timing();
        let data = vec![pattern; m.geometry().row_bytes];
        for &r in &rows {
            m.write_row(BankId(0), RowId(r), &data);
        }
        // A burst of nominally-timed activate/precharge cycles.
        for &r in &rows {
            let now = m.now();
            m.execute(
                DramCommand::Act {
                    bank: BankId(0),
                    row: RowId(r),
                },
                now,
            );
            m.execute(DramCommand::Pre { bank: BankId(0) }, now + t.t_ras);
            m.wait(t.t_rp);
        }
        for &r in &rows {
            assert_eq!(
                m.read_row(BankId(0), RowId(r)),
                data,
                "case {case}: row {r} corrupted (rows={rows:?} pattern={pattern:#x})"
            );
        }
    }
}
