//! Cross-crate integration: refresh policies inside the cycle simulator.

use hira::prelude::*;

/// The legacy `mixes(1, 8, seed)[0]` workloads, bit-identical through the
/// handle frontend.
fn legacy_mix(seed: u64) -> WorkloadHandle {
    mix_with_seed(0, seed)
}

fn tiny(cap: f64, refresh: PolicyHandle) -> SystemConfig {
    SystemConfig::table3(cap, refresh).with_insts(4_000, 800)
}

#[test]
fn hira_beats_baseline_at_high_capacity() {
    let ws = |r| {
        let res = System::new(tiny(128.0, r).with_workload(legacy_mix(21))).run();
        res.ipc.iter().sum::<f64>()
    };
    let baseline = ws(policy::baseline());
    let hira = ws(policy::hira(4));
    assert!(
        hira > baseline,
        "HiRA-4 ({hira}) must beat Baseline ({baseline}) at 128 Gb"
    );
}

#[test]
fn hira_refreshes_every_generated_request() {
    let res = System::new(tiny(8.0, policy::hira(2)).with_workload(legacy_mix(22))).run();
    let mc = res.mc_stats.first().expect("mc stats");
    let served = mc.refresh_access + mc.refresh_refresh + mc.singles;
    // Everything generated is served, modulo requests still in flight at
    // the end of the run (bounded by the table capacity).
    assert!(
        mc.periodic_generated.saturating_sub(served) <= 80,
        "generated {} served {served}",
        mc.periodic_generated
    );
    assert_eq!(mc.worst_window_deficit, 0, "refresh window incomplete");
}

#[test]
fn para_with_hira_outperforms_immediate_para_at_low_thresholds() {
    let pth = solve_pth(&SecurityParams::paper_defaults(0), 64);
    let ws = |handle: PolicyHandle| {
        let cfg = tiny(8.0, handle).with_workload(legacy_mix(23));
        System::new(cfg).run().ipc.iter().sum::<f64>()
    };
    let plain = ws(policy::baseline().with_para_immediate(pth));
    let hira = ws(policy::baseline().with_para_hira(pth, 4));
    assert!(
        hira > plain * 1.5,
        "HiRA-4 ({hira}) should be far ahead of plain PARA ({plain}) at NRH=64"
    );
}

#[test]
fn preventive_refreshes_track_para_triggers() {
    let cfg = tiny(8.0, policy::baseline().with_para_hira(0.3, 4)).with_workload(legacy_mix(24));
    let res = System::new(cfg).run();
    let mc = res.mc_stats.first().expect("mc stats");
    assert!(mc.preventive_generated > 0);
    let served = mc.refresh_access + mc.refresh_refresh + mc.singles;
    assert!(
        mc.preventive_generated.saturating_sub(served) <= 80,
        "generated {} served {served}",
        mc.preventive_generated
    );
}

#[test]
fn registry_policies_all_simulate() {
    // Every standard-registry policy runs end to end through the facade,
    // and refresh interference orders them below the ideal bound.
    let mk = |p| tiny(64.0, p).with_workload(legacy_mix(25));
    let ideal: f64 = System::new(mk(policy::noref())).run().ipc.iter().sum();
    for handle in PolicyRegistry::standard().handles() {
        let name = handle.name().to_owned();
        let r = System::new(mk(handle.clone())).run();
        let ipc: f64 = r.ipc.iter().sum();
        assert!(ipc > 0.0, "{name}: no forward progress");
        assert!(
            ipc <= ideal * 1.001,
            "{name}: {ipc} beat the no-refresh bound {ideal}"
        );
    }
}
