//! Cross-crate integration: HiRA-MC inside the cycle simulator.

use hira::core::config::HiraConfig;
use hira::sim::config::{PreventiveMode, RefreshScheme, SystemConfig};
use hira::sim::system::System;
use hira::sim::workloads::mixes;

fn tiny(cap: f64, refresh: RefreshScheme) -> SystemConfig {
    SystemConfig::table3(cap, refresh).with_insts(4_000, 800)
}

#[test]
fn hira_beats_baseline_at_high_capacity() {
    let mix = &mixes(1, 8, 21)[0];
    let ws = |r| {
        let res = System::new(tiny(128.0, r), mix).run();
        res.ipc.iter().sum::<f64>()
    };
    let baseline = ws(RefreshScheme::Baseline);
    let hira = ws(RefreshScheme::Hira(HiraConfig::hira_n(4)));
    assert!(
        hira > baseline,
        "HiRA-4 ({hira}) must beat Baseline ({baseline}) at 128 Gb"
    );
}

#[test]
fn hira_refreshes_every_generated_request() {
    let mix = &mixes(1, 8, 22)[0];
    let res = System::new(tiny(8.0, RefreshScheme::Hira(HiraConfig::hira_n(2))), mix).run();
    let mc = res.mc_stats.first().expect("mc stats");
    let served = mc.refresh_access + mc.refresh_refresh + mc.singles;
    // Everything generated is served, modulo requests still in flight at
    // the end of the run (bounded by the table capacity).
    assert!(
        mc.periodic_generated.saturating_sub(served) <= 80,
        "generated {} served {served}",
        mc.periodic_generated
    );
    assert_eq!(mc.worst_window_deficit, 0, "refresh window incomplete");
}

#[test]
fn para_with_hira_outperforms_immediate_para_at_low_thresholds() {
    let mix = &mixes(1, 8, 23)[0];
    let pth = hira::core::security::solve_pth(
        &hira::core::security::SecurityParams::paper_defaults(0),
        64,
    );
    let ws = |mode| {
        let cfg = tiny(8.0, RefreshScheme::Baseline).with_preventive(pth, mode);
        System::new(cfg, mix).run().ipc.iter().sum::<f64>()
    };
    let plain = ws(PreventiveMode::Immediate);
    let hira = ws(PreventiveMode::Hira(HiraConfig::hira_n(4)));
    assert!(
        hira > plain * 1.5,
        "HiRA-4 ({hira}) should be far ahead of plain PARA ({plain}) at NRH=64"
    );
}

#[test]
fn preventive_refreshes_track_para_triggers() {
    let mix = &mixes(1, 8, 24)[0];
    let cfg = tiny(8.0, RefreshScheme::Baseline)
        .with_preventive(0.3, PreventiveMode::Hira(HiraConfig::hira_n(4)));
    let res = System::new(cfg, mix).run();
    let mc = res.mc_stats.first().expect("mc stats");
    assert!(mc.preventive_generated > 0);
    let served = mc.refresh_access + mc.refresh_refresh + mc.singles;
    assert!(
        mc.preventive_generated.saturating_sub(served) <= 80,
        "generated {} served {served}",
        mc.preventive_generated
    );
}
