//! Cross-crate integration: the §4 characterization pipeline end to end,
//! from module spec through SoftMC programs to Table 4-style statistics.

use hira::characterize::config::CharacterizeConfig;
use hira::characterize::coverage;
use hira::characterize::verify;
use hira::dram::addr::{BankId, RowId};
use hira::dram::timing::HiraTimings;
use hira::dram::ModuleSpec;
use hira::softmc::SoftMc;

fn small_cfg() -> CharacterizeConfig {
    CharacterizeConfig {
        rows_per_region: 24,
        row_a_stride: 3,
        row_b_stride: 2,
        nrh_victims: 6,
        ..CharacterizeConfig::fast()
    }
}

#[test]
fn coverage_orders_match_table4_across_modules() {
    // A0 (lowest) < C1 (highest) in Table 4.
    let cov = |spec: ModuleSpec| {
        let mut mc = SoftMc::new(spec);
        coverage::measure(&mut mc, BankId(0), &small_cfg())
            .stats()
            .mean
    };
    let a0 = cov(ModuleSpec::a0());
    let c1 = cov(ModuleSpec::c1());
    assert!(a0 > 0.1 && c1 < 0.5, "a0 {a0} c1 {c1}");
    assert!(a0 < c1, "Table 4 ordering violated: A0 {a0} vs C1 {c1}");
}

#[test]
fn figure4_extremes_collapse_but_nominal_works() {
    let mut mc = SoftMc::new(ModuleSpec::c0());
    let cfg = small_cfg();
    let nominal = coverage::measure(&mut mc, BankId(0), &cfg).stats().mean;
    let bad_t1 = coverage::measure(
        &mut mc,
        BankId(0),
        &cfg.with_hira(HiraTimings { t1: 1.5, t2: 3.0 }),
    )
    .stats()
    .mean;
    let bad_t2 = coverage::measure(
        &mut mc,
        BankId(0),
        &cfg.with_hira(HiraTimings { t1: 3.0, t2: 6.0 }),
    )
    .stats()
    .mean;
    assert!(nominal > 0.15, "nominal coverage {nominal}");
    assert!(
        bad_t1 < nominal / 3.0,
        "t1=1.5 coverage {bad_t1} vs nominal {nominal}"
    );
    assert!(
        bad_t2 < nominal / 3.0,
        "t2=6.0 coverage {bad_t2} vs nominal {nominal}"
    );
}

#[test]
fn verification_separates_real_and_inert_modules() {
    let cfg = small_cfg();
    let norm = |spec: ModuleSpec| {
        let mut mc = SoftMc::new(spec);
        verify::measure_victim(&mut mc, BankId(0), RowId(900), &cfg)
            .expect("victim measurable")
            .normalized()
    };
    assert!(norm(ModuleSpec::c0()) > 1.5);
    assert!(norm(ModuleSpec::samsung_4gb(3)) < 1.2);
}
