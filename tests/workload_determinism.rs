//! Cross-crate integration for the open workload frontend: every
//! registered workload must drive the engine to bit-identical results for
//! any thread count, and the trace round-trip (capture → write → parse →
//! replay) must be lossless end to end through the simulator.

use hira::engine::{Executor, Sweep};
use hira::prelude::*;
use hira_bench::{run_ws_as_configured, Scale};

fn tiny_scale() -> Scale {
    Scale {
        mixes: 1,
        insts: 1_000,
        warmup: 200,
        rows: 16,
    }
}

#[test]
fn every_registered_workload_is_thread_count_invariant() {
    // The registry-wide property: the full standard registry — roster
    // benchmarks, mixes, every generator family, the embedded trace —
    // through the engine at 1 vs 8 threads, byte-identical canonical
    // results (the HIRA_THREADS guarantee, end to end through every
    // frontend's per-core Stream seeding).
    let sweep = || {
        Sweep::new("workload_axis").axis(
            "wl",
            WorkloadRegistry::standard()
                .handles()
                .map(|h| (h.name().to_owned(), h.clone()))
                .collect::<Vec<_>>(),
            |_, h| SystemConfig::table3(8.0, policy::baseline()).with_workload(h.clone()),
        )
    };
    let canonical = |threads: usize| {
        run_ws_as_configured(&Executor::with_threads(threads), sweep(), tiny_scale())
            .run
            .canonical_json()
    };
    let single = canonical(1);
    assert!(
        single.matches("\"metric\":\"ws\"").count() >= 30,
        "registry should span all three families"
    );
    assert_eq!(single, canonical(8), "8 threads diverged from 1");
}

#[test]
fn trace_written_parsed_and_replayed_matches_its_generator() {
    // Capture a generator at core 0, write the trace to disk, load it back
    // through the `trace:` frontend, and simulate both: the replayed
    // system must report the same per-core IPC as the generator-driven one
    // (single core, so the capture covers the whole measured region).
    let env = WorkloadEnv {
        core: 0,
        cores: 1,
        seed: 0x5157,
    };
    let mut gen = hira::workload::random().build(&env);
    // 6k records comfortably cover 1.2k instructions of warmup + budget.
    let trace = Trace::capture(gen.as_mut(), 6_000);
    let dir = std::env::temp_dir().join(format!("hira-wl-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("roundtrip.trace");
    trace.save(&path).unwrap();

    let replay = trace_file(path.to_str().unwrap()).expect("written trace must parse");
    let run = |wl: WorkloadHandle| {
        let mut cfg = SystemConfig::table3(8.0, policy::baseline())
            .with_insts(1_000, 200)
            .with_workload(wl);
        cfg.cores = 1;
        System::new(cfg).run()
    };
    let a = run(hira::workload::random());
    let b = run(replay);
    assert_eq!(a.ipc, b.ipc, "trace replay diverged from its generator");
    assert_eq!(a.cycles, b.cycles);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn malformed_trace_files_surface_typed_errors_through_the_frontend() {
    // The registry's `trace:` form and the builder's by-name selection
    // both refuse malformed files without panicking.
    let dir = std::env::temp_dir().join(format!("hira-wl-bad-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("bad.trace");
    std::fs::write(&path, "1 0x40\ntotal nonsense here\n").unwrap();
    let name = format!("trace:{}", path.display());

    let err = trace_file(path.to_str().unwrap()).unwrap_err();
    assert!(
        matches!(err, ParseError::BadBubble { line: 2, .. }),
        "{err:?}"
    );
    assert!(WorkloadRegistry::standard().lookup(&name).is_none());
    let build_err = SystemBuilder::new()
        .workload_name(&name)
        .build()
        .unwrap_err();
    assert!(matches!(build_err, BuildError::UnknownWorkload { .. }));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn mix_handles_reproduce_the_legacy_suite_composition() {
    // The paper's mix suite, through the new frontend: mix0 under the
    // standard suite seed must still assemble 8 roster members and drive a
    // full 8-core simulation deterministically.
    let cfg = || {
        SystemConfig::table3(8.0, policy::noref())
            .with_insts(1_500, 300)
            .with_workload(mix(0))
    };
    let a = System::new(cfg()).run();
    let b = System::new(cfg()).run();
    assert_eq!(a.ipc, b.ipc);
    assert_eq!(a.workloads.len(), 8);
    assert!(a.workloads.iter().all(|n| benchmark(n).is_some()));
    assert_eq!(a.workloads, mix(0).instance_names(8, cfg().seed));
}
