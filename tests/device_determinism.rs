//! Cross-crate integration for the open device axis: every registered
//! device must drive the engine to bit-identical results for any thread
//! count, and the `ddr4-2400` preset must reproduce the exact system the
//! pre-API simulator hard-coded.

use hira::engine::{Executor, Sweep};
use hira::prelude::*;
use hira_bench::{run_ws_with_stats, Scale};

fn tiny_scale() -> Scale {
    Scale {
        mixes: 1,
        insts: 1_000,
        warmup: 200,
        rows: 16,
    }
}

#[test]
fn every_registered_device_is_thread_count_invariant() {
    // The registry-wide property, in the workload_determinism pattern:
    // the full standard device registry (skipping HiRA-incompatible
    // combos via a non-HiRA policy) × a HiRA point on the capable parts,
    // through the engine at 1 vs 8 threads — byte-identical canonical
    // results, including the channel-stats metrics.
    let sweep = || {
        let mut points = Vec::new();
        for dev in DeviceRegistry::standard().handles() {
            let policies: &[&str] = if dev.profile().supports_hira {
                &["baseline", "hira2"]
            } else {
                &["baseline"]
            };
            for pol in policies {
                let key = hira::engine::ScenarioKey::root()
                    .with("dev", dev.name())
                    .with("policy", *pol);
                let cfg = SystemBuilder::new()
                    .device(dev.clone())
                    .policy_name(pol)
                    .workload_name("random")
                    .build()
                    .unwrap();
                points.push((key, cfg));
            }
        }
        Sweep::from_points("device_axis", hira::engine::DEFAULT_BASE_SEED, points)
    };
    let canonical = |threads: usize| {
        run_ws_with_stats(&Executor::with_threads(threads), sweep(), tiny_scale())
            .run
            .canonical_json()
    };
    let single = canonical(1);
    assert!(
        single.matches("\"metric\":\"ws\"").count() >= 7,
        "registry should span all four presets (plus HiRA points)"
    );
    assert_eq!(single, canonical(8), "8 threads diverged from 1");
}

#[test]
fn ddr4_2400_reproduces_the_pre_api_system() {
    // The compatibility anchor behind the tracked BENCH baselines: the
    // default-device configuration equals the explicit ddr4-2400 one,
    // field for field, and simulates identically.
    let explicit = SystemBuilder::new()
        .device(device::ddr4_2400())
        .policy(policy::baseline())
        .insts(1_500, 300)
        .build()
        .unwrap();
    let implicit = SystemConfig::table3(8.0, policy::baseline()).with_insts(1_500, 300);
    assert_eq!(explicit, implicit);
    let a = System::new(explicit).run();
    let b = System::new(implicit).run();
    assert_eq!(a.ipc, b.ipc);
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.mem_cycles, b.mem_cycles);
}

#[test]
fn clock_ratio_flows_from_the_device_into_the_simulation() {
    // A 3200 MT/s part ticks its memory clock at 1/2 the CPU clock
    // instead of 3/8: the simulated mem-cycle count per CPU cycle must
    // follow the device, end to end.
    let run = |dev: DeviceHandle| {
        let cfg = SystemBuilder::new()
            .device(dev)
            .policy(policy::noref())
            .workload_name("stream")
            .insts(1_500, 300)
            .build()
            .unwrap();
        System::new(cfg).run()
    };
    let slow = run(device::ddr4_2400());
    let fast = run(device::ddr4_3200());
    let slow_ratio = slow.mem_cycles as f64 / slow.cycles as f64;
    let fast_ratio = fast.mem_cycles as f64 / fast.cycles as f64;
    assert!((slow_ratio - 3.0 / 8.0).abs() < 1e-3, "{slow_ratio}");
    assert!((fast_ratio - 1.0 / 2.0).abs() < 1e-3, "{fast_ratio}");
}

#[test]
fn native_refpb_path_runs_end_to_end_on_lpddr4() {
    // The lpddr4-3200 preset exercises the REFpb execution path with the
    // device-quoted tRFCpb over its 8-bank geometry.
    let cfg = SystemBuilder::new()
        .device(device::lpddr4_3200())
        .policy(policy::refpb())
        .workload_name("random")
        .insts(2_000, 400)
        .build()
        .unwrap();
    assert!(cfg.device.profile().native_refpb);
    assert_eq!(cfg.banks, 8);
    let r = System::new(cfg).run();
    let refpb: u64 = r.channel_stats.iter().map(|s| s.refpb_commands).sum();
    let rank_refs: u64 = r.channel_stats.iter().map(|s| s.ref_commands).sum();
    assert!(refpb > 0, "no REFpb commands issued");
    assert_eq!(rank_refs, 0, "REFpb must not issue rank-level REF");
    let ps = r.policy_stats.first().expect("policy stats");
    assert_eq!(ps.bank_refs, refpb);
}
