//! Cross-crate integration: the experiment-orchestration engine must
//! produce bit-identical results regardless of its worker-thread count —
//! both for pure compute tasks and for the full simulator pipeline the
//! figure binaries run.

use hira::engine::{derive_seed, metric, Executor, ScenarioKey, Sweep};
use hira::prelude::{policy, SystemConfig};
use hira_bench::{run_ws, Scale};

fn tiny_scale() -> Scale {
    Scale {
        mixes: 3,
        insts: 2_000,
        warmup: 400,
        rows: 16,
    }
}

fn ws_sweep() -> Sweep<SystemConfig> {
    Sweep::new("determinism").axis(
        "scheme",
        [
            ("NoRefresh", policy::noref()),
            ("Baseline", policy::baseline()),
        ],
        |_, s| SystemConfig::table3(8.0, s.clone()),
    )
}

#[test]
fn simulator_sweep_is_byte_identical_across_1_2_and_8_threads() {
    let canonical = |threads: usize| {
        run_ws(&Executor::with_threads(threads), ws_sweep(), tiny_scale())
            .run
            .canonical_json()
    };
    let single = canonical(1);
    assert!(!single.is_empty());
    assert_eq!(single, canonical(2), "2 threads diverged from 1");
    assert_eq!(single, canonical(8), "8 threads diverged from 1");
    // 2 schemes × 3 mixes, one `ws` record each.
    assert_eq!(single.matches("\"metric\":\"ws\"").count(), 6);
}

#[test]
fn policy_sweep_is_byte_identical_across_thread_counts() {
    // The policy_matrix axis: every standard policy through the engine.
    // Stateful policy objects (HiRA-MC tables, RAIDR cursors) must never
    // leak scheduling into results.
    let sweep = || {
        Sweep::new("policy_axis").axis(
            "policy",
            hira::prelude::PolicyRegistry::standard()
                .handles()
                .map(|h| (h.name().to_owned(), h.clone()))
                .collect::<Vec<_>>(),
            |_, h| SystemConfig::table3(8.0, h.clone()),
        )
    };
    let scale = Scale {
        mixes: 1,
        insts: 1_500,
        warmup: 300,
        rows: 16,
    };
    let canonical = |threads: usize| {
        run_ws(&Executor::with_threads(threads), sweep(), scale)
            .run
            .canonical_json()
    };
    let single = canonical(1);
    assert_eq!(single, canonical(4), "4 threads diverged from 1");
}

#[test]
fn compute_sweep_is_byte_identical_across_thread_counts() {
    // 64 points of uneven, seed-driven busywork: enough that any
    // scheduling leak into results or ordering would show.
    let sweep = Sweep::new("compute").axis("i", (0..64u64).map(|i| (i.to_string(), i)), |_, &i| i);
    let run_at = |threads: usize| {
        Executor::with_threads(threads)
            .run(&sweep, |sc| {
                let mut x = sc.seed;
                for _ in 0..(*sc.params % 7) * 1_000 + 100 {
                    x = x.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
                }
                vec![metric("x", (x >> 16) as f64)]
            })
            .canonical_json()
    };
    let single = run_at(1);
    for threads in [2, 3, 8, 32] {
        assert_eq!(single, run_at(threads), "threads={threads}");
    }
}

#[test]
fn scenario_seeds_are_stable_and_scheduling_free() {
    // A point's seed depends only on (base_seed, key): recomputing it in
    // any order, thread, or sweep composition gives the same value.
    let sweep = Sweep::with_seed("seeds", 0xDEAD_BEEF)
        .axis("a", [("1", ()), ("2", ())], |_, _| ())
        .axis("b", [("x", ()), ("y", ())], |_, _| ());
    let seeds: Vec<u64> = Executor::with_threads(4).map(&sweep, |sc| sc.seed);
    for (i, (key, _)) in sweep.points().iter().enumerate() {
        assert_eq!(seeds[i], derive_seed(0xDEAD_BEEF, key));
    }
    let direct = derive_seed(
        0xDEAD_BEEF,
        &ScenarioKey::root().with("a", "2").with("b", "y"),
    );
    assert_eq!(seeds[3], direct);
}
