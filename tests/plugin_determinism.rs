//! Engine determinism over the controller-plugin axis: sweeping every
//! shipped defense must produce byte-identical canonical result sets at
//! any thread count, under both kernels. Plugins hold mutable per-bank
//! state and draw from per-instance seeded streams (PARA), so this is the
//! integration-level proof that plugin state never leaks across points —
//! each point rebuilds its plugins from the handle's factory.

use hira::engine::{Executor, Sweep};
use hira::prelude::*;
use hira_bench::{run_ws, Scale};

fn scale() -> Scale {
    Scale {
        mixes: 2,
        insts: 2_000,
        warmup: 400,
        rows: 16,
    }
}

/// The registry samples plus low-threshold instances that force the
/// injection paths to fire within a short run.
fn roster() -> Vec<(String, PluginHandle)> {
    let mut handles = PluginRegistry::standard().samples();
    handles.extend([
        plugin::oracle(2),
        plugin::para(0.5),
        plugin::graphene(2, 64),
    ]);
    handles
        .into_iter()
        .map(|h| (h.name().to_owned(), h))
        .collect()
}

fn plugin_sweep(kernel: KernelMode) -> Sweep<SystemConfig> {
    Sweep::new("plugin_determinism")
        .axis("plugin", roster(), |_, h| h.clone())
        .axis(
            "policy",
            [("baseline", policy::baseline()), ("hira4", policy::hira(4))],
            move |h, p| {
                SystemConfig::table3(8.0, p.clone())
                    .with_plugin(h.clone())
                    .with_kernel(kernel)
            },
        )
}

#[test]
fn plugin_axis_is_thread_count_deterministic() {
    // 1 vs 8 engine threads over the full plugin roster × two policy
    // families: canonical result sets must be byte-identical.
    let canonical = |threads| {
        run_ws(
            &Executor::with_threads(threads),
            plugin_sweep(KernelMode::Event),
            scale(),
        )
        .run
        .canonical_json()
    };
    let single = canonical(1);
    assert!(!single.is_empty());
    assert_eq!(single, canonical(8), "8 threads diverged from 1");
}

#[test]
fn plugin_axis_is_kernel_invariant_through_the_engine() {
    // The same sweep through both kernels: weighted-speedup tables (and
    // every per-point record) must agree cell for cell. Complements the
    // single-system checks in kernel_equivalence.rs by going through the
    // engine's seeding and the bench runner's mix expansion.
    let ex = Executor::with_threads(4);
    let event = run_ws(&ex, plugin_sweep(KernelMode::Event), scale());
    let dense = run_ws(&ex, plugin_sweep(KernelMode::Dense), scale());
    for (ev, de) in event.run.records.iter().zip(&dense.run.records) {
        assert_eq!(ev.key, de.key, "record order diverged across kernels");
        assert_eq!(
            ev.value, de.value,
            "kernel divergence at {} ({})",
            ev.key, ev.metric
        );
    }
}

#[test]
fn plugin_instances_are_rebuilt_per_point() {
    // Two runs of the same configuration must be bit-identical: if a
    // handle's factory ever shared state between builds (e.g. one PARA
    // RNG advanced across runs), the second run would diverge.
    let mk = || {
        SystemBuilder::new()
            .policy(policy::baseline())
            .workload(mix(0))
            .plugin(plugin::para(0.5))
            .insts(2_000, 400)
            .build()
            .unwrap()
    };
    let first = System::new(mk()).run();
    let second = System::new(mk()).run();
    assert_eq!(first, second);
    assert!(
        first.plugin_totals().injected > 0,
        "para:0.5 never injected — the point is untested"
    );
}
