//! Dense-vs-event kernel equality: the event-driven time-skipping kernel
//! must produce **identical** [`SimResult`]s to the dense reference loop —
//! bit-level on every IPC, cycle count, channel statistic, HiRA-MC counter
//! and policy counter — for every registered refresh policy, a workload
//! sample spanning the shipped families, and more than one device clock
//! ratio. This is the integration-level enforcement of the
//! [`RefreshPolicy::next_wake`] contract and of the core model's
//! sleep/compute-batching arithmetic.

use hira::engine::{Executor, Sweep};
use hira::prelude::*;
use hira::workload::workload;
use hira_bench::{run_ws, Scale};

fn build(
    device: &DeviceHandle,
    policy: &PolicyHandle,
    workload: &WorkloadHandle,
    kernel: KernelMode,
) -> Option<SystemConfig> {
    match SystemBuilder::new()
        .device(device.clone())
        .policy(policy.clone())
        .workload(workload.clone())
        .insts(2_500, 500)
        .kernel(kernel)
        .build()
    {
        Ok(cfg) => Some(cfg),
        // A HiRA policy on a HiRA-inert part is a legitimately absent
        // grid cell, same as in the device_matrix binary.
        Err(BuildError::DeviceLacksHira { .. }) => None,
        Err(e) => panic!("unexpected build failure: {e}"),
    }
}

#[test]
fn every_policy_workload_device_point_is_kernel_invariant() {
    // Every registered policy × a sample of every workload family × two
    // devices with different CPU↔memory tick rationals (3:8 and 1:2).
    let devices = [device::ddr4_2400(), device::lpddr4_3200()];
    let workloads = [workload("mix0"), workload("stream"), workload("random")];
    let mut checked = 0;
    for policy in PolicyRegistry::standard().handles() {
        for dev in &devices {
            for wl in &workloads {
                let Some(dense_cfg) = build(dev, policy, wl, KernelMode::Dense) else {
                    continue;
                };
                let event_cfg = build(dev, policy, wl, KernelMode::Event).unwrap();
                let dense = System::new(dense_cfg).run();
                let event = System::new(event_cfg).run();
                assert_eq!(
                    dense,
                    event,
                    "kernels diverged: policy {} x device {} x workload {}",
                    policy.name(),
                    dev.name(),
                    wl.name()
                );
                checked += 1;
            }
        }
    }
    assert!(checked >= 20, "grid unexpectedly small: {checked} points");
}

#[test]
fn para_layers_are_kernel_invariant() {
    // The composition layers have their own next_wake logic (immediate
    // queues, a second HiRA-MC): cover both over a non-HiRA inner policy
    // and the natively-absorbing HiRA inner.
    let layered = [
        policy::baseline().with_para_immediate(0.5),
        policy::baseline().with_para_hira(0.5, 4),
        policy::hira(4).with_para_hira(0.5, 4),
    ];
    for p in layered {
        let run = |kernel| {
            let cfg = SystemBuilder::new()
                .policy(p.clone())
                .insts(2_500, 500)
                .kernel(kernel)
                .build()
                .unwrap();
            System::new(cfg).run()
        };
        let dense = run(KernelMode::Dense);
        let event = run(KernelMode::Event);
        assert_eq!(dense, event, "kernels diverged under layer {}", p.name());
        assert!(
            dense.policy_stats[0].preventive_queued > 0,
            "{}: the PARA layer never triggered — the point is untested",
            p.name()
        );
    }
}

#[test]
fn capped_runs_report_the_cap_under_both_kernels() {
    // Pin the safety cap below the run's natural length: both kernels
    // must stop at *exactly* the cap with equal results — the event
    // kernel clamps its time skips to it (no overshoot however far the
    // next wake lay; SimResult::cycles documents this).
    let natural = System::new(
        SystemBuilder::new()
            .cores(1)
            .policy(policy::baseline())
            .workload(workload("chase"))
            .insts(2_000, 400)
            .build()
            .unwrap(),
    )
    .run()
    .cycles;
    let cap = natural / 2;
    let run = |kernel| {
        let cfg = SystemBuilder::new()
            .cores(1)
            .policy(policy::baseline())
            .workload(workload("chase"))
            .insts(2_000, 400)
            .kernel(kernel)
            .build()
            .unwrap()
            .with_cycle_cap(cap);
        System::new(cfg).run()
    };
    let dense = run(KernelMode::Dense);
    let event = run(KernelMode::Event);
    assert_eq!(dense.cycles, cap, "dense run must stop at the cap");
    assert_eq!(event.cycles, cap, "event run must not overshoot the cap");
    assert_eq!(dense, event);
}

#[test]
fn engine_thread_count_determinism_holds_in_event_mode() {
    // The engine determinism guarantee re-checked with the event kernel
    // explicitly selected: results byte-identical at 1 vs 8 threads.
    let scale = Scale {
        mixes: 2,
        insts: 2_000,
        warmup: 400,
        rows: 16,
    };
    let sweep = || {
        Sweep::new("event_determinism").axis(
            "policy",
            [("baseline", policy::baseline()), ("hira4", policy::hira(4))],
            |_, p| SystemConfig::table3(8.0, p.clone()).with_kernel(KernelMode::Event),
        )
    };
    let canonical = |threads| {
        run_ws(&Executor::with_threads(threads), sweep(), scale)
            .run
            .canonical_json()
    };
    let single = canonical(1);
    assert!(!single.is_empty());
    assert_eq!(single, canonical(8), "8 threads diverged from 1");
}
