//! Dense-vs-event kernel equality: the event-driven time-skipping kernel
//! must produce **identical** [`SimResult`]s to the dense reference loop —
//! bit-level on every IPC, cycle count, channel statistic, HiRA-MC counter
//! and policy counter — for every registered refresh policy, a workload
//! sample spanning the shipped families, and more than one device clock
//! ratio. This is the integration-level enforcement of the
//! [`RefreshPolicy::next_wake`] contract and of the core model's
//! sleep/compute-batching arithmetic.

use hira::engine::{Executor, Sweep};
use hira::prelude::*;
use hira::workload::workload;
use hira_bench::{run_ws, Scale};

fn build(
    device: &DeviceHandle,
    policy: &PolicyHandle,
    workload: &WorkloadHandle,
    kernel: KernelMode,
) -> Option<SystemConfig> {
    match SystemBuilder::new()
        .device(device.clone())
        .policy(policy.clone())
        .workload(workload.clone())
        .insts(2_500, 500)
        .kernel(kernel)
        .build()
    {
        Ok(cfg) => Some(cfg),
        // A HiRA policy on a HiRA-inert part is a legitimately absent
        // grid cell, same as in the device_matrix binary.
        Err(BuildError::DeviceLacksHira { .. }) => None,
        Err(e) => panic!("unexpected build failure: {e}"),
    }
}

#[test]
fn every_policy_workload_device_point_is_kernel_invariant() {
    // Every registered policy × a sample of every workload family × two
    // devices with different CPU↔memory tick rationals (3:8 and 1:2).
    let devices = [device::ddr4_2400(), device::lpddr4_3200()];
    let workloads = [workload("mix0"), workload("stream"), workload("random")];
    let mut checked = 0;
    for policy in PolicyRegistry::standard().handles() {
        for dev in &devices {
            for wl in &workloads {
                let Some(dense_cfg) = build(dev, policy, wl, KernelMode::Dense) else {
                    continue;
                };
                let event_cfg = build(dev, policy, wl, KernelMode::Event).unwrap();
                let dense = System::new(dense_cfg).run();
                let event = System::new(event_cfg).run();
                assert_eq!(
                    dense,
                    event,
                    "kernels diverged: policy {} x device {} x workload {}",
                    policy.name(),
                    dev.name(),
                    wl.name()
                );
                checked += 1;
            }
        }
    }
    assert!(checked >= 20, "grid unexpectedly small: {checked} points");
}

#[test]
fn para_layers_are_kernel_invariant() {
    // The composition layers have their own next_wake logic (immediate
    // queues, a second HiRA-MC): cover both over a non-HiRA inner policy
    // and the natively-absorbing HiRA inner.
    let layered = [
        policy::baseline().with_para_immediate(0.5),
        policy::baseline().with_para_hira(0.5, 4),
        policy::hira(4).with_para_hira(0.5, 4),
    ];
    for p in layered {
        let run = |kernel| {
            let cfg = SystemBuilder::new()
                .policy(p.clone())
                .insts(2_500, 500)
                .kernel(kernel)
                .build()
                .unwrap();
            System::new(cfg).run()
        };
        let dense = run(KernelMode::Dense);
        let event = run(KernelMode::Event);
        assert_eq!(dense, event, "kernels diverged under layer {}", p.name());
        assert!(
            dense.policy_stats[0].preventive_queued > 0,
            "{}: the PARA layer never triggered — the point is untested",
            p.name()
        );
    }
}

#[test]
fn capped_runs_report_the_cap_under_both_kernels() {
    // Pin the safety cap below the run's natural length: both kernels
    // must stop at *exactly* the cap with equal results — the event
    // kernel clamps its time skips to it (no overshoot however far the
    // next wake lay; SimResult::cycles documents this).
    let natural = System::new(
        SystemBuilder::new()
            .cores(1)
            .policy(policy::baseline())
            .workload(workload("chase"))
            .insts(2_000, 400)
            .build()
            .unwrap(),
    )
    .run()
    .cycles;
    let cap = natural / 2;
    let run = |kernel| {
        let cfg = SystemBuilder::new()
            .cores(1)
            .policy(policy::baseline())
            .workload(workload("chase"))
            .insts(2_000, 400)
            .kernel(kernel)
            .build()
            .unwrap()
            .with_cycle_cap(cap);
        System::new(cfg).run()
    };
    let dense = run(KernelMode::Dense);
    let event = run(KernelMode::Event);
    assert_eq!(dense.cycles, cap, "dense run must stop at the cap");
    assert_eq!(event.cycles, cap, "event run must not overshoot the cap");
    assert_eq!(dense, event);
}

#[test]
fn epoch_samples_are_kernel_invariant_across_policies() {
    // The epoch sampler fires at exact dense cycle boundaries; the event
    // kernel clamps its time skips to them, so the recorded time series
    // must match the dense one sample for sample — ipc, bandwidths, queue
    // depths, refresh occupancy, everything — for every registered policy.
    for policy in PolicyRegistry::standard().handles() {
        let run = |kernel| {
            let (handle, sink) = probe::epoch_collector(4_096);
            let cfg = SystemBuilder::new()
                .policy(policy.clone())
                .insts(2_500, 500)
                .kernel(kernel)
                .probe(handle)
                .build()
                .unwrap();
            let result = System::new(cfg).run();
            let samples = sink.lock().unwrap().clone();
            (result, samples)
        };
        let (dense, dense_samples) = run(KernelMode::Dense);
        let (event, event_samples) = run(KernelMode::Event);
        assert_eq!(dense, event, "results diverged under {}", policy.name());
        assert!(
            dense_samples.len() >= 2,
            "{}: too few epochs ({}) — the boundary semantics are untested",
            policy.name(),
            dense_samples.len()
        );
        assert_eq!(
            dense_samples,
            event_samples,
            "epoch time series diverged under {}",
            policy.name()
        );
        // The samples land exactly on multiples of the epoch period, in
        // order, and the cumulative view is consistent.
        for (i, s) in dense_samples.iter().enumerate() {
            assert_eq!(s.epoch as usize, i);
            assert_eq!(s.cycle, (i as u64 + 1) * 4_096);
        }
    }
}

#[test]
fn probe_attachment_leaves_results_bit_identical() {
    // Probes are read-only observers: attaching the whole built-in kit at
    // once must leave the SimResult bit-identical to the bare run, under
    // both kernels and across policy families.
    let dir = std::env::temp_dir().join("hira-probe-identity");
    std::fs::create_dir_all(&dir).unwrap();
    for policy in [policy::baseline(), policy::refpb(), policy::hira(4)] {
        for kernel in [KernelMode::Dense, KernelMode::Event] {
            let build = |probe_handle: Option<ProbeHandle>| {
                let mut b = SystemBuilder::new()
                    .policy(policy.clone())
                    .insts(2_000, 400)
                    .kernel(kernel);
                if let Some(p) = probe_handle {
                    b = b.probe(p);
                }
                System::new(b.build().unwrap()).run()
            };
            let bare = build(None);
            let tag = format!("{}-{}", policy.name(), kernel);
            let (latency, _) = latency_collector();
            let (epochs, _) = epoch_collector(2_048);
            let (acts, _) = probe::act_exposure_collector();
            let trace = probe::probe(&format!("cmdtrace:{}", dir.join(&tag).display()));
            let probed = build(Some(ProbeHandle::multi(vec![trace, epochs, latency, acts])));
            assert_eq!(
                bare,
                probed,
                "probes perturbed the run: policy {} x kernel {kernel}",
                policy.name()
            );
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn every_registered_plugin_is_kernel_invariant() {
    // The controller-plugin hook points (per-ACT notification, injected
    // preventive refreshes, plugin wakes feeding the event gate) have
    // their own next_wake logic: dense and event must stay bit-identical
    // with every shipped defense attached. The registry samples cover the
    // canonical parameterizations; the extra low-threshold instances force
    // the *injection* paths to actually fire within a short run (oracle
    // triggers on victim exposure, graphene on aggressor count).
    let mut roster = PluginRegistry::standard().samples();
    // tRH = 1 instances are deliberately absent: a defense whose injected
    // refreshes immediately re-trigger it (every refresh is itself an
    // activation) cascades without bound.
    roster.extend([
        plugin::oracle(2),
        plugin::para(0.5),
        plugin::graphene(2, 64),
    ]);
    for handle in roster {
        for policy in [policy::baseline(), policy::hira(4)] {
            let run = |kernel| {
                let cfg = SystemBuilder::new()
                    .policy(policy.clone())
                    .workload(workload("hotspot"))
                    .plugin(handle.clone())
                    .insts(2_500, 500)
                    .kernel(kernel)
                    .build()
                    .unwrap();
                System::new(cfg).run()
            };
            let dense = run(KernelMode::Dense);
            let event = run(KernelMode::Event);
            assert_eq!(
                dense,
                event,
                "kernels diverged: plugin {} x policy {}",
                handle.name(),
                policy.name()
            );
            let totals = dense.plugin_totals();
            assert!(
                totals.acts_observed > 0,
                "{}: the plugin never observed an ACT — the point is untested",
                handle.name()
            );
            if ["para:0.5", "oracle:2", "graphene:2:64"].contains(&handle.name()) {
                assert!(
                    totals.injected > 0,
                    "{}: the injection path never fired — the point is untested",
                    handle.name()
                );
            }
        }
    }
}

#[test]
fn engine_thread_count_determinism_holds_in_event_mode() {
    // The engine determinism guarantee re-checked with the event kernel
    // explicitly selected: results byte-identical at 1 vs 8 threads.
    let scale = Scale {
        mixes: 2,
        insts: 2_000,
        warmup: 400,
        rows: 16,
    };
    let sweep = || {
        Sweep::new("event_determinism").axis(
            "policy",
            [("baseline", policy::baseline()), ("hira4", policy::hira(4))],
            |_, p| SystemConfig::table3(8.0, p.clone()).with_kernel(KernelMode::Event),
        )
    };
    let canonical = |threads| {
        run_ws(&Executor::with_threads(threads), sweep(), scale)
            .run
            .canonical_json()
    };
    let single = canonical(1);
    assert!(!single.is_empty());
    assert_eq!(single, canonical(8), "8 threads diverged from 1");
}
