//! # hira — facade crate for the HiRA (MICRO 2022) reproduction
//!
//! Re-exports the workspace crates under one roof so examples, integration
//! tests, and downstream users can depend on a single package:
//!
//! * [`dram`] — circuit-behavioural DDR4 chip/module model,
//! * [`softmc`] — SoftMC-style testing infrastructure,
//! * [`characterize`] — §4's characterization experiments (Algorithms 1 & 2),
//! * [`core`] — the HiRA operation, HiRA-MC, PARA and the security analysis,
//! * [`sim`] — the cycle-level system simulator behind §7-§10,
//! * [`engine`] — the deterministic parallel experiment-orchestration
//!   subsystem every `hira-bench` figure binary runs on.
//!
//! ## Quickstart
//!
//! ```rust
//! use hira::core::hira_op::HiraOperation;
//! use hira::dram::timing::TimingParams;
//!
//! let timing = TimingParams::ddr4_2400();
//! let op = HiraOperation::nominal();
//! // HiRA refreshes two rows in 38 ns instead of 78.25 ns (−51.4 %).
//! assert!(op.two_row_refresh_ns(&timing) < timing.two_row_refresh_ns());
//! ```

pub use hira_characterize as characterize;
pub use hira_core as core;
pub use hira_dram as dram;
pub use hira_engine as engine;
pub use hira_sim as sim;
pub use hira_softmc as softmc;
