//! # hira — facade crate for the HiRA (MICRO 2022) reproduction
//!
//! Re-exports the workspace crates under one roof so examples, integration
//! tests, and downstream users can depend on a single package:
//!
//! * [`dram`] — circuit-behavioural DDR4 chip/module model,
//! * [`softmc`] — SoftMC-style testing infrastructure,
//! * [`characterize`] — §4's characterization experiments (Algorithms 1 & 2),
//! * [`core`] — the HiRA operation, HiRA-MC, PARA and the security analysis,
//! * [`workload`] — the open workload frontend: the SPEC-like roster and
//!   its mixes, parametric generators, and `.trace` replay behind one
//!   trait + registry,
//! * [`sim`] — the cycle-level system simulator behind §7-§10,
//! * [`engine`] — the deterministic parallel experiment-orchestration
//!   subsystem every `hira-bench` figure binary runs on,
//! * [`obs`] — structured tracing (JSONL spans/events), the metrics
//!   registry (Prometheus text exposition) and live sweep progress,
//! * [`store`] — the content-addressed sweep-result cache: append-only
//!   JSONL store plus the cache-aware executor path.
//!
//! ## Quickstart
//!
//! ```rust
//! use hira::core::hira_op::HiraOperation;
//! use hira::dram::timing::TimingParams;
//!
//! let timing = TimingParams::ddr4_2400();
//! let op = HiraOperation::nominal();
//! // HiRA refreshes two rows in 38 ns instead of 78.25 ns (−51.4 %).
//! assert!(op.two_row_refresh_ns(&timing) < timing.two_row_refresh_ns());
//! ```

pub use hira_characterize as characterize;
pub use hira_core as core;
pub use hira_dram as dram;
pub use hira_engine as engine;
pub use hira_obs as obs;
pub use hira_sim as sim;
pub use hira_softmc as softmc;
pub use hira_store as store;
pub use hira_workload as workload;

/// The one-stop import for examples, tests and downstream users: system
/// construction ([`prelude::SystemBuilder`]), the open refresh-policy API
/// ([`prelude::policy`], [`prelude::PolicyRegistry`]), the open workload
/// frontend ([`prelude::WorkloadRegistry`], [`prelude::mix`], generators,
/// trace replay), the open device axis ([`prelude::device`],
/// [`prelude::DeviceRegistry`], the standard presets), the controller
/// plugins ([`prelude::plugin`], [`prelude::PluginRegistry`], the shipped
/// RowHammer defenses), the zero-cost
/// observability layer ([`prelude::probe`], [`prelude::ProbeRegistry`],
/// the collectors), the simulator, and the experiment-orchestration
/// engine.
///
/// ```rust
/// use hira::prelude::*;
///
/// let cfg = SystemBuilder::new()
///     .chip_gbit(32.0)
///     .policy(policy::hira(4))
///     .workload(mix(1)) // or .workload_name("zipf80"), "trace:<path>", …
///     .insts(2_000, 400)
///     .build()
///     .unwrap();
/// let result = System::new(cfg).run();
/// assert_eq!(result.ipc.len(), 8);
/// ```
pub mod prelude {
    pub use hira_core::config::HiraConfig;
    pub use hira_core::finder::McStats;
    pub use hira_core::security::{solve_pth, SecurityParams};
    pub use hira_dram::addr::{BankId, RowId};
    pub use hira_dram::timing::{HiraTimings, TimingParams};
    pub use hira_dram::{DramModule, ModuleSpec};
    pub use hira_engine::{
        derive_seed, flabel, metric, Executor, PointTelemetry, RunRecord, RunSet, Scenario,
        ScenarioKey, Sweep,
    };
    pub use hira_obs::{Level, MetricsRegistry, Progress, TraceSink};
    pub use hira_sim::builder::{BuildError, SystemBuilder};
    pub use hira_sim::clock::MemClock;
    pub use hira_sim::device::{
        self, CommandTable, DeviceHandle, DeviceModel, DeviceProfile, DeviceRegistry,
    };
    pub use hira_sim::plugin::{
        self, ControllerPlugin, PluginEnv, PluginHandle, PluginRegistry, PluginStats,
    };
    pub use hira_sim::policy::{
        self, DemandDecision, PolicyEnv, PolicyHandle, PolicyProfile, PolicyRegistry, PolicyStats,
        RankView, RefreshAction, RefreshPolicy,
    };
    pub use hira_sim::probe::{
        self, epoch_collector, latency_collector, CmdEvent, DramCmd, EpochSample, Probe,
        ProbeHandle, ProbeRegistry, RefreshEvent, ReqEvent,
    };
    pub use hira_sim::system::RunTelemetry;
    pub use hira_sim::{KernelMode, SimResult, System, SystemConfig};
    pub use hira_store::{
        code_version_salt, CacheExecutorExt, CacheStats, StoredPoint, SweepPlan, SweepStore,
    };
    pub use hira_workload::{
        benchmark, mix, mix_with_seed, roster, spec, trace_file, Benchmark, Op, ParseError, Trace,
        TraceRecord, Workload, WorkloadEnv, WorkloadHandle, WorkloadProfile, WorkloadRegistry,
    };
}
